//! Reno-style TCP congestion control over a shaped link.
//!
//! The fluid model in [`crate::tcp`] treats the sender as perfectly
//! greedy — the right abstraction for 10-second bandwidth summaries.
//! Some of the paper's finer observations are congestion-control
//! artifacts, though: the ramp that makes short GCE bursts slow
//! (Figure 5), and the way a token bucket's rate cliff looks like
//! persistent congestion to the sender (Figure 7's throttled regime).
//! This module adds a per-RTT Reno loop (slow start, congestion
//! avoidance, fast recovery on loss) driven by the same [`Shaper`] and
//! [`NicModel`] abstractions.
//!
//! The simulation advances one RTT per step: the sender offers `cwnd`
//! segments, the shaper admits what the policy allows, overflow and
//! random segment loss trigger multiplicative decrease.

use crate::nic::NicModel;
use crate::shaper::Shaper;

/// Configuration of a congestion-controlled flow.
#[derive(Debug, Clone, Copy)]
pub struct RenoConfig {
    /// Segment size in bytes (typically the NIC's max segment).
    pub segment_bytes: f64,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Receive-window cap on cwnd, segments.
    pub max_cwnd: f64,
}

impl Default for RenoConfig {
    fn default() -> Self {
        RenoConfig {
            segment_bytes: 65_536.0,
            initial_cwnd: 10.0,
            initial_ssthresh: 512.0,
            max_cwnd: 4_096.0,
        }
    }
}

/// One RTT-round record of a congestion-controlled flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenoRound {
    /// Time at the start of the round, seconds.
    pub t: f64,
    /// Congestion window during the round, segments.
    pub cwnd: f64,
    /// Goodput achieved this round, bits/s.
    pub goodput_bps: f64,
    /// Observed RTT this round, seconds.
    pub rtt_s: f64,
    /// Whether a loss event ended the round.
    pub loss: bool,
}

/// Result of a congestion-controlled transfer.
#[derive(Debug, Clone)]
pub struct RenoResult {
    /// Per-round records.
    pub rounds: Vec<RenoRound>,
    /// Total payload delivered, bits.
    pub delivered_bits: f64,
    /// Total loss events.
    pub loss_events: usize,
}

impl RenoResult {
    /// Mean goodput over the whole transfer, bits/s.
    pub fn mean_goodput_bps(&self) -> f64 {
        let dur: f64 = self.rounds.iter().map(|r| r.rtt_s).sum();
        if dur <= 0.0 {
            0.0
        } else {
            self.delivered_bits / dur
        }
    }

    /// Time until goodput first reached `frac` of `target_bps`
    /// (`None` if never) — the burst ramp-up metric.
    pub fn time_to_fraction(&self, target_bps: f64, frac: f64) -> Option<f64> {
        let mut t = 0.0;
        for r in &self.rounds {
            if r.goodput_bps >= frac * target_bps {
                return Some(t);
            }
            t += r.rtt_s;
        }
        None
    }
}

/// Run a Reno flow for `duration_s` over `shaper` + `nic`.
pub fn run_reno<S: Shaper>(
    shaper: &mut S,
    nic: &mut NicModel,
    cfg: &RenoConfig,
    duration_s: f64,
) -> RenoResult {
    assert!(duration_s > 0.0, "duration must be positive");
    let seg_bits = cfg.segment_bytes * 8.0;
    let mut cwnd = cfg.initial_cwnd;
    let mut ssthresh = cfg.initial_ssthresh;
    let mut t = 0.0;
    let mut rounds = Vec::new();
    let mut delivered = 0.0;
    let mut loss_events = 0;

    while t < duration_s {
        // RTT for this round, at the current policy rate.
        let rate_now = shaper.rate_hint(t).max(1e6);
        let rtt = nic.sample_rtt(cfg.segment_bytes, rate_now).max(1e-5);

        // Offer a window's worth of data over one RTT.
        let offered_bits = cwnd * seg_bits;
        let granted = shaper.transmit(t, rtt, offered_bits);
        delivered += granted;

        // Loss: queue overflow — the window exceeded what the path
        // admitted by more than ~one bandwidth-delay product of
        // buffering — or random segment loss. The buffer allowance
        // keeps RTT jitter from reading as congestion.
        let overflow = granted < offered_bits * 0.5;
        let p_seg = nic.retrans_prob(cfg.segment_bytes, rate_now);
        let p_round = 1.0 - (1.0 - p_seg).powf(cwnd.max(1.0));
        let random_loss = nic.chance(p_round);
        let loss = overflow || random_loss;

        rounds.push(RenoRound {
            t,
            cwnd,
            goodput_bps: granted / rtt,
            rtt_s: rtt,
            loss,
        });

        if loss {
            loss_events += 1;
            // Fast recovery: halve the window.
            ssthresh = (cwnd / 2.0).max(2.0);
            cwnd = ssthresh;
        } else if cwnd < ssthresh {
            cwnd = (cwnd * 2.0).min(ssthresh); // slow start
        } else {
            cwnd += 1.0; // congestion avoidance
        }
        cwnd = cwnd.clamp(1.0, cfg.max_cwnd);
        t += rtt;
    }

    RenoResult {
        rounds,
        delivered_bits: delivered,
        loss_events,
    }
}

/// Run `n_flows` Reno flows sharing one shaper (e.g. several Spark
/// fetch streams over one VM's egress bucket). Rounds are lock-stepped
/// at the mean RTT; the shaper's admission is divided in proportion to
/// each flow's offer, and a flow whose share falls below half its offer
/// sees a loss. Returns each flow's delivered bits and the per-round
/// aggregate goodput.
pub fn run_reno_multi<S: Shaper>(
    shaper: &mut S,
    nic: &mut NicModel,
    cfg: &RenoConfig,
    n_flows: usize,
    duration_s: f64,
) -> (Vec<f64>, Vec<RenoRound>) {
    assert!(
        n_flows >= 1 && duration_s > 0.0,
        "need at least one flow and a positive duration"
    );
    let seg_bits = cfg.segment_bytes * 8.0;
    let mut cwnd = vec![cfg.initial_cwnd; n_flows];
    let mut ssthresh = vec![cfg.initial_ssthresh; n_flows];
    let mut delivered = vec![0.0f64; n_flows];
    let mut rounds = Vec::new();
    let mut t = 0.0;

    while t < duration_s {
        let rate_now = shaper.rate_hint(t).max(1e6);
        let rtt = nic.sample_rtt(cfg.segment_bytes, rate_now).max(1e-5);
        let offers: Vec<f64> = cwnd.iter().map(|w| w * seg_bits).collect();
        let total_offer: f64 = offers.iter().sum();
        let granted_total = shaper.transmit(t, rtt, total_offer);
        let scale = if total_offer > 0.0 {
            granted_total / total_offer
        } else {
            1.0
        };
        let mut any_loss = false;
        for f in 0..n_flows {
            let granted = offers[f] * scale;
            delivered[f] += granted;
            let p_seg = nic.retrans_prob(cfg.segment_bytes, rate_now);
            let p_round = 1.0 - (1.0 - p_seg).powf(cwnd[f].max(1.0));
            let loss = scale < 0.5 || nic.chance(p_round);
            any_loss |= loss;
            if loss {
                ssthresh[f] = (cwnd[f] / 2.0).max(2.0);
                cwnd[f] = ssthresh[f];
            } else if cwnd[f] < ssthresh[f] {
                cwnd[f] = (cwnd[f] * 2.0).min(ssthresh[f]);
            } else {
                cwnd[f] += 1.0;
            }
            cwnd[f] = cwnd[f].clamp(1.0, cfg.max_cwnd);
        }
        rounds.push(RenoRound {
            t,
            cwnd: cwnd.iter().sum(),
            goodput_bps: granted_total / rtt,
            rtt_s: rtt,
            loss: any_loss,
        });
        t += rtt;
    }
    (delivered, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::NicConfig;
    use crate::shaper::{StaticShaper, TokenBucket};
    use crate::units::{gbit, gbps};

    fn nic(rate: f64, seed: u64) -> NicModel {
        NicModel::new(NicConfig::gce_virtio(rate), seed)
    }

    #[test]
    fn converges_to_link_rate() {
        let mut shaper = StaticShaper::new(gbps(10.0));
        let mut n = nic(gbps(10.0), 1);
        let res = run_reno(&mut shaper, &mut n, &RenoConfig::default(), 30.0);
        // Long-run goodput near the link rate (sawtooth + random loss
        // keep it a bit below).
        let mean = res.mean_goodput_bps();
        assert!(mean > gbps(6.0) && mean <= gbps(10.0) + 1.0, "mean {mean}");
    }

    #[test]
    fn slow_start_doubles_until_threshold() {
        let mut shaper = StaticShaper::new(gbps(100.0)); // no constraint
        let mut n = nic(gbps(100.0), 2);
        let cfg = RenoConfig {
            initial_cwnd: 2.0,
            initial_ssthresh: 64.0,
            ..Default::default()
        };
        let res = run_reno(&mut shaper, &mut n, &cfg, 1.0);
        let windows: Vec<f64> = res.rounds.iter().map(|r| r.cwnd).take(6).collect();
        assert_eq!(&windows[..5], &[2.0, 4.0, 8.0, 16.0, 32.0]);
    }

    #[test]
    fn ramp_up_takes_multiple_rtts() {
        // The Figure 5 mechanism seen from TCP's side: a fresh flow
        // needs several RTTs before filling a fat pipe, so short bursts
        // average less throughput.
        let mut shaper = StaticShaper::new(gbps(16.0));
        let mut n = nic(gbps(16.0), 3);
        let cfg = RenoConfig {
            initial_cwnd: 10.0,
            ..Default::default()
        };
        let res = run_reno(&mut shaper, &mut n, &cfg, 10.0);
        let ramp = res.time_to_fraction(gbps(16.0), 0.9);
        assert!(ramp.is_some());
        let ramp = ramp.unwrap();
        assert!(ramp > 0.005 && ramp < 3.0, "ramp {ramp}");
    }

    #[test]
    fn token_bucket_cliff_looks_like_congestion() {
        // A bucket that empties quickly: the flow rides at 10 Gbps,
        // then the policy cliff forces repeated multiplicative
        // decreases — cwnd (and goodput) collapse to the low rate.
        let mut shaper = TokenBucket::sigma_rho(gbit(10.0), gbps(1.0), gbps(10.0));
        let mut n = nic(gbps(10.0), 4);
        let res = run_reno(&mut shaper, &mut n, &RenoConfig::default(), 30.0);
        assert!(res.loss_events > 3, "losses {}", res.loss_events);
        // The flow touches the 10 Gbps high rate while tokens last...
        let peak = res
            .rounds
            .iter()
            .map(|r| r.goodput_bps)
            .fold(0.0, f64::max);
        assert!(peak > gbps(7.0), "peak {peak}");
        // ...but the bucket caps time-weighted goodput near the refill
        // rate: ≤ (10 Gbit budget + 30 s × 1 Gbps) / 30 s ≈ 1.33 Gbps.
        let mean = res.mean_goodput_bps();
        assert!(mean < gbps(1.8), "mean {mean}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut shaper = StaticShaper::new(gbps(10.0));
            let mut n = nic(gbps(10.0), 9);
            run_reno(&mut shaper, &mut n, &RenoConfig::default(), 5.0).delivered_bits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_flow_shares_are_roughly_fair() {
        let mut shaper = StaticShaper::new(gbps(10.0));
        let mut n = nic(gbps(10.0), 21);
        let (delivered, _rounds) =
            run_reno_multi(&mut shaper, &mut n, &RenoConfig::default(), 4, 30.0);
        let total: f64 = delivered.iter().sum();
        assert!(total > 0.0);
        for d in &delivered {
            let share = d / total;
            // Lock-stepped identical flows split evenly.
            assert!((share - 0.25).abs() < 0.05, "share {share}");
        }
    }

    #[test]
    fn multi_flow_aggregate_tracks_single_flow() {
        let run_multi = |k: usize| {
            let mut shaper = StaticShaper::new(gbps(10.0));
            let mut n = nic(gbps(10.0), 22);
            let (delivered, _) =
                run_reno_multi(&mut shaper, &mut n, &RenoConfig::default(), k, 20.0);
            delivered.iter().sum::<f64>()
        };
        let one = run_multi(1);
        let four = run_multi(4);
        // More flows fill the pipe at least as well (faster aggregate
        // ramp, shared losses), within a generous band.
        assert!(four > 0.8 * one, "one {one} four {four}");
    }

    #[test]
    fn cwnd_respects_bounds() {
        let mut shaper = StaticShaper::new(gbps(1.0));
        let mut n = nic(gbps(1.0), 11);
        let cfg = RenoConfig {
            max_cwnd: 64.0,
            ..Default::default()
        };
        let res = run_reno(&mut shaper, &mut n, &cfg, 10.0);
        assert!(res.rounds.iter().all(|r| r.cwnd >= 1.0 && r.cwnd <= 64.0));
    }
}
