//! iperf-like TCP stream simulation.
//!
//! [`StreamSim`] drives a [`Shaper`] + [`NicModel`] pair with a traffic
//! [`TrafficPattern`] and produces the measurement artifacts the paper
//! collects: 10-second bandwidth summaries with retransmission counts
//! ([`BandwidthTrace`]) and sampled per-segment RTTs ([`RttTrace`]).
//!
//! The model is greedy like iperf: while the pattern is "on", the sender
//! always has data queued, so the achieved rate equals whatever the
//! shaper admits. Idle phases still advance shaper state (token refill).

use crate::nic::NicModel;
use crate::pattern::TrafficPattern;
use crate::shaper::Shaper;
use crate::trace::{BandwidthTrace, BwSample, RttTrace};

/// Configuration of one measured stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total experiment duration, seconds.
    pub duration_s: f64,
    /// Traffic schedule.
    pub pattern: TrafficPattern,
    /// Application `write()` size in bytes (iperf default: 128 KiB).
    pub write_bytes: f64,
    /// Summarization interval, seconds (the paper uses 10 s).
    pub summary_interval_s: f64,
    /// Fluid simulation step, seconds.
    pub step_s: f64,
    /// RTT samples to draw per summary interval while transmitting
    /// (0 disables latency collection).
    pub rtt_samples_per_interval: usize,
}

impl StreamConfig {
    /// Paper-style defaults: 128 KiB writes, 10 s summaries, 100 ms steps.
    pub fn new(duration_s: f64, pattern: TrafficPattern) -> Self {
        StreamConfig {
            duration_s,
            pattern,
            write_bytes: 131_072.0,
            summary_interval_s: 10.0,
            step_s: 0.1,
            rtt_samples_per_interval: 0,
        }
    }

    /// Enable RTT sampling with `n` samples per summary interval.
    pub fn with_rtt_samples(mut self, n: usize) -> Self {
        self.rtt_samples_per_interval = n;
        self
    }

    /// Set the application write size in bytes.
    pub fn with_write_bytes(mut self, bytes: f64) -> Self {
        self.write_bytes = bytes;
        self
    }

    /// Set the fluid step.
    pub fn with_step(mut self, step_s: f64) -> Self {
        assert!(step_s > 0.0, "step must be positive");
        self.step_s = step_s;
        self
    }
}

/// Result of a stream run.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Fixed-interval bandwidth summaries.
    pub bandwidth: BandwidthTrace,
    /// Sampled segment RTTs (empty unless enabled).
    pub rtt: RttTrace,
}

/// Stream simulator. See the module docs.
pub struct StreamSim;

impl StreamSim {
    /// Run a stream over `shaper`/`nic` according to `cfg`.
    ///
    /// Summary intervals during which the pattern never transmitted are
    /// omitted from the trace (iperf reports nothing while idle);
    /// partially-idle intervals report the average rate *while
    /// transmitting*, matching how the paper's box plots are built.
    pub fn run<S: Shaper>(shaper: &mut S, nic: &mut NicModel, cfg: &StreamConfig) -> StreamResult {
        assert!(
            cfg.step_s > 0.0 && cfg.summary_interval_s >= cfg.step_s,
            "summary interval must cover at least one step"
        );
        let mut bandwidth = BandwidthTrace::new(cfg.summary_interval_s);
        let mut rtt = RttTrace::default();

        let steps = (cfg.duration_s / cfg.step_s).round() as u64;
        let steps_per_interval = (cfg.summary_interval_s / cfg.step_s).round().max(1.0) as u64;

        let mut interval_bits = 0.0;
        let mut interval_on_time = 0.0;
        let mut interval_idx: u64 = 0;
        let mut last_rate = 0.0;

        for i in 0..steps {
            let t = i as f64 * cfg.step_s;
            let on = cfg.pattern.is_on(t);
            let demand = if on { f64::INFINITY } else { 0.0 };
            let granted = shaper.transmit(t, cfg.step_s, demand);
            if on {
                interval_bits += granted;
                interval_on_time += cfg.step_s;
                last_rate = granted / cfg.step_s;
            }

            let interval_done = (i + 1) % steps_per_interval == 0 || i + 1 == steps;
            if interval_done {
                let interval_start = interval_idx as f64 * cfg.summary_interval_s;
                if interval_on_time > 0.0 {
                    let avg_rate = interval_bits / interval_on_time;
                    let retrans =
                        nic.count_retransmissions(interval_bits, cfg.write_bytes, avg_rate);
                    bandwidth.samples.push(BwSample {
                        t: interval_start,
                        bandwidth_bps: avg_rate,
                        bits: interval_bits,
                        retransmissions: retrans,
                    });
                    for k in 0..cfg.rtt_samples_per_interval {
                        // Sample segments against the momentary rate;
                        // spread sample timestamps across the interval.
                        // Retransmitted segments report their inflated
                        // (recovery-inclusive) RTT, as wireshark would.
                        let frac = (k as f64 + 0.5) / cfg.rtt_samples_per_interval as f64;
                        let ts = interval_start + frac * cfg.summary_interval_s;
                        let outcome =
                            nic.send_segment(cfg.write_bytes, last_rate.max(avg_rate * 0.5));
                        rtt.samples.push((ts, outcome.rtt_s()));
                    }
                }
                interval_bits = 0.0;
                interval_on_time = 0.0;
                interval_idx += 1;
            }
        }

        StreamResult { bandwidth, rtt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::NicConfig;
    use crate::shaper::{StaticShaper, TokenBucket};
    use crate::units::{gbit, gbps};

    #[test]
    fn full_speed_static_link_reports_line_rate() {
        let mut shaper = StaticShaper::new(gbps(10.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 1);
        let cfg = StreamConfig::new(100.0, TrafficPattern::FullSpeed);
        let res = StreamSim::run(&mut shaper, &mut nic, &cfg);
        assert_eq!(res.bandwidth.samples.len(), 10);
        for s in &res.bandwidth.samples {
            assert!((s.bandwidth_bps - gbps(10.0)).abs() < 1.0);
        }
        assert!((res.bandwidth.total_bits() - gbps(10.0) * 100.0).abs() < 10.0);
    }

    #[test]
    fn duty_cycle_reports_transmitting_rate_not_wall_rate() {
        let mut shaper = StaticShaper::new(gbps(8.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 2);
        let cfg = StreamConfig::new(400.0, TrafficPattern::TEN_THIRTY);
        let res = StreamSim::run(&mut shaper, &mut nic, &cfg);
        // Bandwidth-while-transmitting should be the full 8 Gbps.
        for s in &res.bandwidth.samples {
            assert!(s.bandwidth_bps > gbps(7.9), "rate {}", s.bandwidth_bps);
        }
        // Total bits reflect the 25% duty fraction.
        let expected = gbps(8.0) * 400.0 * 0.25;
        assert!((res.bandwidth.total_bits() - expected).abs() / expected < 0.05);
    }

    #[test]
    fn idle_only_intervals_are_omitted() {
        let mut shaper = StaticShaper::new(gbps(1.0));
        let mut nic = NicModel::new(NicConfig::plain(gbps(1.0)), 3);
        // 5 s on / 35 s off: intervals [10,20), [20,30), [30,40) are idle.
        let cfg = StreamConfig::new(
            80.0,
            TrafficPattern::DutyCycle {
                on_s: 5.0,
                off_s: 35.0,
            },
        );
        let res = StreamSim::run(&mut shaper, &mut nic, &cfg);
        // Two bursts (t=0, t=40) → two summary intervals with data.
        assert_eq!(res.bandwidth.samples.len(), 2);
        assert_eq!(res.bandwidth.samples[0].t, 0.0);
        assert_eq!(res.bandwidth.samples[1].t, 40.0);
    }

    #[test]
    fn token_bucket_stream_shows_depletion() {
        // 5 Gbit budget → ~0.56 s of 10 Gbps, then 1 Gbps.
        let mut shaper = TokenBucket::new(gbit(5.0), gbit(5.0), gbps(10.0), gbps(1.0), gbps(1.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 4);
        let cfg = StreamConfig::new(60.0, TrafficPattern::FullSpeed);
        let res = StreamSim::run(&mut shaper, &mut nic, &cfg);
        let first = res.bandwidth.samples.first().unwrap().bandwidth_bps;
        let last = res.bandwidth.samples.last().unwrap().bandwidth_bps;
        assert!(first > gbps(1.4), "first {first}");
        assert!(last < gbps(1.2), "last {last}");
    }

    #[test]
    fn rtt_sampling_produces_requested_counts() {
        let mut shaper = StaticShaper::new(gbps(10.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 5);
        let cfg = StreamConfig::new(50.0, TrafficPattern::FullSpeed).with_rtt_samples(20);
        let res = StreamSim::run(&mut shaper, &mut nic, &cfg);
        assert_eq!(res.rtt.samples.len(), 5 * 20);
        assert!(res.rtt.mean() > 0.0);
        // Timestamps are ordered.
        assert!(res.rtt.samples.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut shaper =
                TokenBucket::new(gbit(50.0), gbit(50.0), gbps(10.0), gbps(1.0), gbps(1.0));
            let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 7);
            let cfg = StreamConfig::new(120.0, TrafficPattern::TEN_THIRTY).with_rtt_samples(5);
            StreamSim::run(&mut shaper, &mut nic, &cfg)
        };
        let a = run();
        let b = run();
        assert_eq!(a.bandwidth.samples, b.bandwidth.samples);
        assert_eq!(a.rtt.samples, b.rtt.samples);
    }
}
