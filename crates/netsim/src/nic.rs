//! Virtual-NIC packet model: segmentation, queueing latency, loss.
//!
//! Section 3.3 ("Virtual NIC Implementations") finds that EC2 and GCE
//! made opposite choices with application-visible consequences:
//!
//! * **EC2** advertises a 9000-byte jumbo MTU: a `write()` is cut into
//!   segments of at most 9 KB at the socket.
//! * **GCE** advertises a 1500-byte MTU but enables **TSO**: the virtual
//!   NIC accepts "packets" as large as 64 KB and splits them later.
//!
//! The size of the "packet" handed to the virtual NIC tends to equal
//! the application's `write()` size up to those caps, and it drives
//! both perceived RTT (larger segments → longer perceived transmission
//! time, deeper shared queues) and retransmissions (limited buffer space
//! in the bottom half of the virtual NIC driver). The paper measured
//! (Figure 12): GCE with 9 KB writes → ≈2.3 ms RTT and near-zero
//! retransmissions; with 128 KB writes → up to ≈10 ms RTT and hundreds
//! of thousands of retransmissions. On EC2, latency is sub-millisecond
//! at the full 10 Gbps but grows by **two orders of magnitude** when the
//! token bucket throttles the VM to 1 Gbps (Figure 7), "suggesting large
//! queues in the virtual device driver".
//!
//! [`NicModel`] reproduces these effects with a queue-of-segments model:
//!
//! ```text
//! rtt = base_rtt * jitter
//!     + queued_segments * segment_bits / current_rate
//! queued_segments ~ LogNormal(median = q_base * throttle_ratio, sigma)
//! throttle_ratio  = line_rate / current_rate     (≥ 1 when shaped)
//! ```
//!
//! so throttling both slows the drain *and* deepens the queue — giving
//! the measured two-orders-of-magnitude blowup rather than the single
//! order a fixed-occupancy model would predict.

use crate::rng::SimRng;

/// Configuration of a virtual NIC. All byte quantities are bytes.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Line rate of the unshaped virtual NIC, bits/s.
    pub line_rate_bps: f64,
    /// Largest "packet" the virtual NIC accepts (EC2: 9000 = jumbo MTU;
    /// GCE: 65536 via TSO).
    pub max_segment_bytes: f64,
    /// Propagation + virtualization floor of the RTT, seconds.
    pub base_rtt_s: f64,
    /// Lognormal sigma of the multiplicative base-RTT jitter.
    pub base_jitter_sigma: f64,
    /// Median queued segments observed at line rate.
    pub queue_segments_base: f64,
    /// Lognormal sigma of the queue-occupancy distribution.
    pub queue_sigma: f64,
    /// Hard cap on queued segments (device ring size).
    pub max_queue_segments: f64,
    /// Per-segment retransmission probability when segments are far
    /// above the driver's comfortable size.
    pub retrans_max_prob: f64,
    /// Segment size at which retransmission probability is half of max.
    pub retrans_seg_threshold_bytes: f64,
    /// Logistic scale (bytes) of the size→loss transition.
    pub retrans_seg_scale: f64,
    /// Additional per-segment loss while the VM is throttled (queue
    /// overflow during rate transitions).
    pub retrans_throttle_prob: f64,
}

impl NicConfig {
    /// EC2 "enhanced networking" (ENA) style NIC: 9 K jumbo frames,
    /// sub-millisecond base RTT, loss only under throttling.
    pub fn ec2_ena(line_rate_bps: f64) -> Self {
        NicConfig {
            line_rate_bps,
            max_segment_bytes: 9_000.0,
            base_rtt_s: 150e-6,
            base_jitter_sigma: 0.35,
            queue_segments_base: 25.0,
            queue_sigma: 0.55,
            max_queue_segments: 1_024.0,
            retrans_max_prob: 1e-7,
            retrans_seg_threshold_bytes: 9_000.0,
            retrans_seg_scale: 4_000.0,
            retrans_throttle_prob: 2e-7,
        }
    }

    /// GCE virtio-style NIC: 1500 MTU + TSO up to 64 K, millisecond base
    /// RTT (Andromeda virtual network), size-sensitive loss.
    pub fn gce_virtio(line_rate_bps: f64) -> Self {
        NicConfig {
            line_rate_bps,
            max_segment_bytes: 65_536.0,
            base_rtt_s: 1.7e-3,
            base_jitter_sigma: 0.25,
            queue_segments_base: 40.0,
            queue_sigma: 0.75,
            max_queue_segments: 300.0,
            retrans_max_prob: 1.6e-5,
            retrans_seg_threshold_bytes: 32_000.0,
            retrans_seg_scale: 4_500.0,
            retrans_throttle_prob: 0.0,
        }
    }

    /// A plain research-cloud NIC (HPCCloud): 1500 MTU, low latency,
    /// negligible loss.
    pub fn plain(line_rate_bps: f64) -> Self {
        NicConfig {
            line_rate_bps,
            max_segment_bytes: 1_500.0,
            base_rtt_s: 120e-6,
            base_jitter_sigma: 0.3,
            queue_segments_base: 40.0,
            queue_sigma: 0.5,
            max_queue_segments: 2_048.0,
            retrans_max_prob: 2e-8,
            retrans_seg_threshold_bytes: 1_500.0,
            retrans_seg_scale: 800.0,
            retrans_throttle_prob: 0.0,
        }
    }
}

/// Outcome of one simulated segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketOutcome {
    /// Delivered on the first attempt.
    Delivered {
        /// Observed round-trip time in seconds.
        rtt_s: f64,
    },
    /// Lost and retransmitted (observed RTT includes the retry).
    Retransmitted {
        /// Observed round-trip time in seconds (includes RTO back-off).
        rtt_s: f64,
    },
}

impl PacketOutcome {
    /// The observed RTT regardless of outcome.
    pub fn rtt_s(&self) -> f64 {
        match *self {
            PacketOutcome::Delivered { rtt_s } | PacketOutcome::Retransmitted { rtt_s } => rtt_s,
        }
    }

    /// Whether the segment was retransmitted.
    pub fn is_retransmitted(&self) -> bool {
        matches!(self, PacketOutcome::Retransmitted { .. })
    }
}

/// Stateful virtual-NIC model. See the module docs.
pub struct NicModel {
    cfg: NicConfig,
    rng: SimRng,
    seed: u64,
}

impl NicModel {
    /// Create a NIC from a configuration and seed.
    pub fn new(cfg: NicConfig, seed: u64) -> Self {
        NicModel {
            cfg,
            rng: SimRng::new(seed),
            seed,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Segment ("packet") size the virtual NIC sees for a given
    /// application `write()` size: `min(write, max_segment)`.
    pub fn segment_bytes(&self, write_bytes: f64) -> f64 {
        write_bytes.min(self.cfg.max_segment_bytes).max(1.0)
    }

    /// Per-segment retransmission probability at the given conditions.
    pub fn retrans_prob(&self, write_bytes: f64, current_rate_bps: f64) -> f64 {
        let seg = self.segment_bytes(write_bytes);
        // Logistic in segment size.
        let x = (seg - self.cfg.retrans_seg_threshold_bytes) / self.cfg.retrans_seg_scale;
        let size_loss = self.cfg.retrans_max_prob / (1.0 + (-x).exp());
        let throttled = current_rate_bps < 0.66 * self.cfg.line_rate_bps;
        size_loss + if throttled { self.cfg.retrans_throttle_prob } else { 0.0 }
    }

    /// Sample the RTT of one segment under the given conditions.
    ///
    /// `current_rate_bps` is the momentary shaped rate of the path
    /// (e.g. the token bucket's low rate while throttled).
    pub fn sample_rtt(&mut self, write_bytes: f64, current_rate_bps: f64) -> f64 {
        let rate = current_rate_bps.max(1e6);
        let seg_bits = self.segment_bytes(write_bytes) * 8.0;
        let throttle_ratio = (self.cfg.line_rate_bps / rate).max(1.0);
        let median_queue = (self.cfg.queue_segments_base * throttle_ratio)
            .min(self.cfg.max_queue_segments);
        let occupancy = (median_queue * self.rng.lognormal(0.0, self.cfg.queue_sigma))
            .min(self.cfg.max_queue_segments);
        let queue_delay = occupancy * seg_bits / rate;
        let base = self.cfg.base_rtt_s * self.rng.lognormal(0.0, self.cfg.base_jitter_sigma);
        base + seg_bits / rate + queue_delay
    }

    /// Simulate one segment: RTT plus loss/retransmission.
    pub fn send_segment(&mut self, write_bytes: f64, current_rate_bps: f64) -> PacketOutcome {
        let p = self.retrans_prob(write_bytes, current_rate_bps);
        let rtt = self.sample_rtt(write_bytes, current_rate_bps);
        if self.rng.chance(p) {
            // A retransmitted segment is observed after roughly one
            // extra RTT of recovery (fast retransmit).
            let retry = self.sample_rtt(write_bytes, current_rate_bps);
            PacketOutcome::Retransmitted { rtt_s: rtt + retry }
        } else {
            PacketOutcome::Delivered { rtt_s: rtt }
        }
    }

    /// Expected retransmission count for `bits` of payload moved with
    /// the given write size and rate, drawn as a Poisson variate
    /// (binomial with tiny p and huge n).
    pub fn count_retransmissions(
        &mut self,
        bits: f64,
        write_bytes: f64,
        current_rate_bps: f64,
    ) -> u64 {
        if bits <= 0.0 {
            return 0;
        }
        let segments = bits / (self.segment_bytes(write_bytes) * 8.0);
        let p = self.retrans_prob(write_bytes, current_rate_bps);
        self.rng.poisson(segments * p)
    }

    /// Draw a Bernoulli outcome from the NIC's deterministic stream
    /// (used by flow models that need loss decisions consistent with
    /// the NIC's other randomness).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Reset the internal RNG (fresh VM semantics).
    pub fn reset(&mut self) {
        self.rng = SimRng::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{gbps, kib};

    fn mean_rtt(nic: &mut NicModel, write: f64, rate: f64, n: usize) -> f64 {
        (0..n).map(|_| nic.sample_rtt(write, rate)).sum::<f64>() / n as f64
    }

    #[test]
    fn ec2_is_sub_millisecond_at_line_rate() {
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 1);
        let m = mean_rtt(&mut nic, kib(128.0) / 8.0, gbps(10.0), 4000);
        assert!(m < 1e-3, "mean rtt {m}");
        assert!(m > 5e-5, "mean rtt {m}");
    }

    #[test]
    fn ec2_throttling_raises_latency_two_orders() {
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 2);
        let fast = mean_rtt(&mut nic, 9_000.0, gbps(10.0), 4000);
        let slow = mean_rtt(&mut nic, 9_000.0, gbps(1.0), 4000);
        let ratio = slow / fast;
        assert!(ratio > 25.0 && ratio < 400.0, "ratio {ratio}");
        assert!(slow > 5e-3 && slow < 60e-3, "throttled rtt {slow}");
    }

    #[test]
    fn gce_rtt_matches_paper_write_size_effect() {
        let mut nic = NicModel::new(NicConfig::gce_virtio(gbps(16.0)), 3);
        let small = mean_rtt(&mut nic, 9_000.0, gbps(16.0), 4000);
        let large = mean_rtt(&mut nic, kib(128.0) / 8.0, gbps(16.0), 4000);
        // ≈2.3 ms with 9 K writes; several ms (up to ~10 ms) with 128 K.
        assert!(small > 1.5e-3 && small < 3.2e-3, "small-write rtt {small}");
        assert!(large > 3e-3 && large < 11e-3, "large-write rtt {large}");
        assert!(large > 1.5 * small, "large {large} small {small}");
    }

    #[test]
    fn gce_retransmissions_grow_with_write_size() {
        let nic = NicModel::new(NicConfig::gce_virtio(gbps(16.0)), 4);
        let p_small = nic.retrans_prob(9_000.0, gbps(16.0));
        let p_large = nic.retrans_prob(131_072.0, gbps(16.0));
        assert!(p_large > 20.0 * p_small, "p9k={p_small} p128k={p_large}");
    }

    #[test]
    fn segment_caps_at_mtu_or_tso_limit() {
        let ec2 = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 0);
        assert_eq!(ec2.segment_bytes(131_072.0), 9_000.0);
        assert_eq!(ec2.segment_bytes(4_000.0), 4_000.0);
        let gce = NicModel::new(NicConfig::gce_virtio(gbps(16.0)), 0);
        assert_eq!(gce.segment_bytes(131_072.0), 65_536.0);
        assert_eq!(gce.segment_bytes(9_000.0), 9_000.0);
    }

    #[test]
    fn retransmission_counts_scale_with_traffic() {
        let mut nic = NicModel::new(NicConfig::gce_virtio(gbps(16.0)), 5);
        // One hour at 15 Gbps with 128 K writes.
        let bits = gbps(15.0) * 3600.0;
        let r_large = nic.count_retransmissions(bits, 131_072.0, gbps(16.0));
        let r_small = nic.count_retransmissions(bits, 9_000.0, gbps(16.0));
        assert!(r_large > 500, "large {r_large}");
        assert!(r_small < r_large / 3, "small {r_small} large {r_large}");
    }

    #[test]
    fn ec2_loss_is_negligible() {
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 6);
        let bits = gbps(10.0) * 3600.0;
        let r = nic.count_retransmissions(bits, 131_072.0, gbps(10.0));
        // Negligible next to GCE's counts.
        assert!(r < 1000, "r {r}");
    }

    #[test]
    fn outcome_accessors() {
        let d = PacketOutcome::Delivered { rtt_s: 0.002 };
        let r = PacketOutcome::Retransmitted { rtt_s: 0.009 };
        assert_eq!(d.rtt_s(), 0.002);
        assert!(!d.is_retransmitted());
        assert!(r.is_retransmitted());
    }

    #[test]
    fn reset_reproduces() {
        let mut nic = NicModel::new(NicConfig::gce_virtio(gbps(16.0)), 9);
        let a: Vec<f64> = (0..50).map(|_| nic.sample_rtt(65_536.0, gbps(16.0))).collect();
        nic.reset();
        let b: Vec<f64> = (0..50).map(|_| nic.sample_rtt(65_536.0, gbps(16.0))).collect();
        assert_eq!(a, b);
    }
}
