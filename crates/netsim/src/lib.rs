#![deny(missing_docs)]

//! # netsim — deterministic cloud-network simulator
//!
//! This crate is the network substrate for reproducing *"Is Big Data
//! Performance Reproducible in Modern Cloud Networks?"* (Uta et al.,
//! NSDI 2020). The paper measures real clouds (Amazon EC2, Google Cloud,
//! a private HPCCloud) and then *emulates* the mechanisms it uncovers
//! (token-bucket traffic shaping, per-core QoS, virtual-NIC segmentation)
//! to study their effect on big-data workloads. Since the real clouds are
//! not available here, this crate implements those mechanisms directly:
//!
//! * [`shaper`] — pluggable egress shapers: [`shaper::TokenBucket`]
//!   (EC2-style budget/high/low-rate policy), [`shaper::PerCoreQos`]
//!   (GCE-style per-core bandwidth guarantee with burst ramp-up),
//!   [`shaper::NoiseShaper`] (HPCCloud-style contention noise),
//!   [`shaper::EmpiricalShaper`] (resampling from a quantile-defined
//!   bandwidth distribution, used for the Ballani A–H emulation), and
//!   [`shaper::StaticShaper`] / [`shaper::MinShaper`] for composition.
//! * [`nic`] — a virtual-NIC packet model: MTU/TSO segmentation, a
//!   device-driver queue, per-packet RTT, and loss/retransmission.
//! * [`tcp`] — an iperf-like TCP stream model that drives a shaper+NIC
//!   pair under a traffic [`pattern`] and produces measurement traces.
//! * [`fabric`] — a multi-node fluid-flow fabric with max-min fair
//!   bandwidth sharing, used by the `bigdata` crate to run simulated
//!   Spark jobs whose shuffles interact with per-node token buckets.
//! * [`faults`] — a seed-deterministic fault layer (VM stalls, link
//!   degradation, loss bursts) that threads into the fabric and into
//!   single-endpoint campaigns via [`faults::FaultInjector`].
//!
//! The simulator is **fully deterministic**: all randomness flows from
//! explicit seeds through [`rng::SimRng`], and there is no global state
//! or wall-clock dependency (the smoltcp idiom: the caller owns time).
//!
//! ## Example
//!
//! ```
//! use netsim::shaper::{Shaper, TokenBucket};
//! use netsim::units::gbps;
//!
//! // A c5.xlarge-style bucket: 5000 Gbit budget, 10 Gbps high rate,
//! // 1 Gbps low rate, 1 Gbit/s refill.
//! let mut tb = TokenBucket::new(5e12, 5e12, gbps(10.0), gbps(1.0), gbps(1.0));
//! // Drive it at full speed for one second of simulated time.
//! let allowed = tb.transmit(0.0, 1.0, f64::INFINITY);
//! assert!((allowed - gbps(10.0)).abs() < 1e-3);
//! ```

pub mod congestion;
pub mod cpu;
pub mod events;
pub mod fabric;
pub mod faults;
pub mod nic;
pub mod pattern;
pub mod rng;
pub mod shaper;
pub mod tcp;
pub mod trace;
pub mod units;

pub use fabric::{
    EventCause, Fabric, FabricPerf, FlowId, FlowSpec, LinkRoute, NextEvent, NodeId, StepPath,
    MAX_ROUTE_LINKS,
};
pub use faults::{FaultConfig, FaultEpisode, FaultInjector, FaultKind, FaultSchedule};
pub use nic::{NicModel, PacketOutcome};
pub use pattern::TrafficPattern;
pub use rng::SimRng;
pub use shaper::Shaper;
pub use tcp::{StreamConfig, StreamSim};
pub use trace::{BandwidthTrace, BwSample, RttTrace};
