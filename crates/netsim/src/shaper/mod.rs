//! Egress traffic shapers — the QoS mechanisms the paper uncovers.
//!
//! Section 3.3 identifies three very different provider policies:
//!
//! * Amazon EC2 uses a **token bucket** per VM: a budget spent at a high
//!   rate (e.g. 10 Gbps), throttled to a low rate (e.g. 1 Gbps) once the
//!   budget empties, replenished at ~1 Gbit of tokens per second
//!   ([`TokenBucket`]).
//! * Google Cloud enforces a **per-core bandwidth QoS** (2 Gbps/core)
//!   that favours long-running flows; short bursts pay a routing ramp-up
//!   through gateways and show a long lower tail ([`PerCoreQos`]).
//! * The private HPCCloud applies **no QoS**; variability comes from
//!   contention with other tenants and is well modelled as correlated
//!   stochastic noise ([`NoiseShaper`]).
//!
//! [`EmpiricalShaper`] replays a quantile-defined bandwidth distribution
//! (the Ballani et al. clouds A–H of Figure 2), re-sampling uniformly at
//! a fixed interval exactly as the paper's emulation methodology does.
//!
//! All shapers implement [`Shaper`], a *fluid* interface: the caller
//! advances simulated time in steps and asks how many bits may be sent.

mod empirical;
mod noise;
mod per_core;
mod token_bucket;

pub use empirical::{EmpiricalShaper, QuantileDist};
pub use noise::{NoiseConfig, NoiseShaper};
pub use per_core::{PerCoreQos, PerCoreQosConfig};
pub use token_bucket::TokenBucket;

/// A fluid egress shaper.
///
/// Implementations are deterministic given their construction seed. Time
/// is owned by the caller: `transmit` must be called with non-decreasing
/// `now` values and strictly positive `dt`; idle periods should still be
/// stepped (with `demand_bits == 0.0`) so that state such as token
/// refill advances.
pub trait Shaper {
    /// Attempt to transmit up to `demand_bits` during `[now, now + dt)`.
    ///
    /// Returns the number of bits actually admitted (`<= demand_bits`).
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64;

    /// Instantaneous rate ceiling in bits/second at time `now`.
    ///
    /// A planning hint (used e.g. by the max-min fairness solver); it
    /// must not mutate observable state.
    fn rate_hint(&self, now: f64) -> f64;

    /// Restore the initial state — the paper's "fresh set of VMs".
    fn reset(&mut self);

    /// Remaining token budget in bits, for shapers that have one.
    ///
    /// Lets instrumentation (Figures 15 and 18 plot per-node budgets)
    /// observe bucket state through a generic shaper handle. Non-bucket
    /// shapers return `None`.
    fn token_budget_bits(&self) -> Option<f64> {
        None
    }

    /// Advance through `steps` idle ticks of `dt` seconds starting at
    /// `now` — exactly equivalent to calling
    /// `transmit(now + k*dt, dt, 0.0)` for `k in 0..steps`.
    ///
    /// The default is that literal loop. Overrides may replace it with a
    /// closed form or an early exit, but must leave the shaper in the
    /// **bitwise-identical** state the loop would: every observable
    /// (later `transmit` grants, `rate_hint`, `token_budget_bits`) must
    /// match exactly. The equivalence is pinned per shaper by
    /// `netsim/tests/prop_fabric_fast.rs`.
    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        let mut t = now;
        for _ in 0..steps {
            self.transmit(t, dt, 0.0);
            t += dt;
        }
    }
}

/// Unconditioned constant-rate link (e.g. a physical NIC cap).
#[derive(Debug, Clone, Copy)]
pub struct StaticShaper {
    rate_bps: f64,
}

impl StaticShaper {
    /// A shaper that always admits `rate_bps`.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps >= 0.0, "rate must be non-negative");
        StaticShaper { rate_bps }
    }
}

impl Shaper for StaticShaper {
    fn transmit(&mut self, _now: f64, dt: f64, demand_bits: f64) -> f64 {
        demand_bits.min(self.rate_bps * dt)
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        self.rate_bps
    }

    fn reset(&mut self) {}

    fn rest(&mut self, _now: f64, _dt: f64, _steps: u64) {
        // Stateless: an idle transmit observes nothing and changes
        // nothing, so any number of them is a no-op.
    }
}

/// Series composition: traffic must pass both shapers (e.g. a token
/// bucket behind a 10 Gbps physical port). The admitted volume is the
/// minimum of the two; both shapers observe the admitted traffic.
pub struct MinShaper<A, B> {
    a: A,
    b: B,
}

impl<A: Shaper, B: Shaper> MinShaper<A, B> {
    /// Compose two shapers in series.
    pub fn new(a: A, b: B) -> Self {
        MinShaper { a, b }
    }
}

impl<A: Shaper, B: Shaper> Shaper for MinShaper<A, B> {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        // Ask the tighter stage first with the full demand, then pass the
        // admitted volume through the other stage.
        let granted_a = self.a.transmit(now, dt, demand_bits);
        self.b.transmit(now, dt, granted_a)
    }

    fn rate_hint(&self, now: f64) -> f64 {
        self.a.rate_hint(now).min(self.b.rate_hint(now))
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
    }

    fn token_budget_bits(&self) -> Option<f64> {
        self.a.token_budget_bits().or_else(|| self.b.token_budget_bits())
    }

    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        // The loop would call a.transmit(t, dt, 0.0) then
        // b.transmit(t, dt, granted_a) each tick; grants are bounded by
        // demand, so granted_a == 0.0 and both stages see pure idle
        // ticks. Resting each stage independently is therefore exact.
        self.a.rest(now, dt, steps);
        self.b.rest(now, dt, steps);
    }
}

impl Shaper for Box<dyn Shaper + Send> {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        (**self).transmit(now, dt, demand_bits)
    }

    fn rate_hint(&self, now: f64) -> f64 {
        (**self).rate_hint(now)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn token_budget_bits(&self) -> Option<f64> {
        (**self).token_budget_bits()
    }

    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        (**self).rest(now, dt, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gbps;

    #[test]
    fn static_shaper_caps_demand() {
        let mut s = StaticShaper::new(gbps(10.0));
        assert_eq!(s.transmit(0.0, 1.0, gbps(4.0)), gbps(4.0));
        assert_eq!(s.transmit(1.0, 1.0, gbps(40.0)), gbps(10.0));
        assert_eq!(s.rate_hint(0.0), gbps(10.0));
    }

    #[test]
    fn min_shaper_takes_tighter_stage() {
        let mut s = MinShaper::new(StaticShaper::new(gbps(10.0)), StaticShaper::new(gbps(4.0)));
        assert_eq!(s.transmit(0.0, 1.0, f64::INFINITY), gbps(4.0));
        assert_eq!(s.rate_hint(0.0), gbps(4.0));
    }

    #[test]
    fn boxed_shaper_dispatch() {
        let mut s: Box<dyn Shaper + Send> = Box::new(StaticShaper::new(gbps(2.0)));
        assert_eq!(s.transmit(0.0, 0.5, f64::INFINITY), gbps(1.0));
        s.reset();
        assert_eq!(s.rate_hint(0.0), gbps(2.0));
    }
}
