//! Egress traffic shapers — the QoS mechanisms the paper uncovers.
//!
//! Section 3.3 identifies three very different provider policies:
//!
//! * Amazon EC2 uses a **token bucket** per VM: a budget spent at a high
//!   rate (e.g. 10 Gbps), throttled to a low rate (e.g. 1 Gbps) once the
//!   budget empties, replenished at ~1 Gbit of tokens per second
//!   ([`TokenBucket`]).
//! * Google Cloud enforces a **per-core bandwidth QoS** (2 Gbps/core)
//!   that favours long-running flows; short bursts pay a routing ramp-up
//!   through gateways and show a long lower tail ([`PerCoreQos`]).
//! * The private HPCCloud applies **no QoS**; variability comes from
//!   contention with other tenants and is well modelled as correlated
//!   stochastic noise ([`NoiseShaper`]).
//!
//! [`EmpiricalShaper`] replays a quantile-defined bandwidth distribution
//! (the Ballani et al. clouds A–H of Figure 2), re-sampling uniformly at
//! a fixed interval exactly as the paper's emulation methodology does.
//!
//! All shapers implement [`Shaper`], a *fluid* interface: the caller
//! advances simulated time in steps and asks how many bits may be sent.

mod empirical;
mod noise;
mod per_core;
mod token_bucket;

pub use empirical::{EmpiricalShaper, QuantileDist};
pub use noise::{NoiseConfig, NoiseShaper};
pub use per_core::{PerCoreQos, PerCoreQosConfig};
pub use token_bucket::TokenBucket;

/// A fluid egress shaper.
///
/// Implementations are deterministic given their construction seed. Time
/// is owned by the caller: `transmit` must be called with non-decreasing
/// `now` values and strictly positive `dt`; idle periods should still be
/// stepped (with `demand_bits == 0.0`) so that state such as token
/// refill advances.
pub trait Shaper {
    /// Attempt to transmit up to `demand_bits` during `[now, now + dt)`.
    ///
    /// Returns the number of bits actually admitted (`<= demand_bits`).
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64;

    /// Instantaneous rate ceiling in bits/second at time `now`.
    ///
    /// A planning hint (used e.g. by the max-min fairness solver); it
    /// must not mutate observable state.
    fn rate_hint(&self, now: f64) -> f64;

    /// Restore the initial state — the paper's "fresh set of VMs".
    fn reset(&mut self);

    /// Remaining token budget in bits, for shapers that have one.
    ///
    /// Lets instrumentation (Figures 15 and 18 plot per-node budgets)
    /// observe bucket state through a generic shaper handle. Non-bucket
    /// shapers return `None`.
    fn token_budget_bits(&self) -> Option<f64> {
        None
    }

    /// Advance through `steps` idle ticks of `dt` seconds starting at
    /// `now` — exactly equivalent to calling
    /// `transmit(now + k*dt, dt, 0.0)` for `k in 0..steps`.
    ///
    /// The default is that literal loop. Overrides may replace it with a
    /// closed form or an early exit, but must leave the shaper in the
    /// **bitwise-identical** state the loop would: every observable
    /// (later `transmit` grants, `rate_hint`, `token_budget_bits`) must
    /// match exactly. The equivalence is pinned per shaper by
    /// `netsim/tests/prop_fabric_fast.rs`.
    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        let mut t = now;
        for _ in 0..steps {
            self.transmit(t, dt, 0.0);
            t += dt;
        }
    }

    /// Closed-form next-event bound: a number of upcoming `transmit`
    /// calls of step `dt` that **cannot** change the bitwise value of
    /// [`Shaper::rate_hint`], no matter what demand each call carries.
    ///
    /// The event-driven fabric engine min-reduces this bound (together
    /// with fault-schedule transitions and the caller's step budget)
    /// into its per-window event horizon: while every node's hint is
    /// provably pinned, the cached max-min allocation is reused without
    /// even re-reading the hints. Returning a smaller value than
    /// possible costs only performance; returning a larger value than
    /// the true crossing distance would be a *correctness* bug, so
    /// conservative closed forms subtract guard slack. The default — no
    /// guarantee at all — is always safe: the engine then re-checks the
    /// hint bit pattern every step, which is exactly what the fast path
    /// does.
    fn hint_stable_steps(&self, now: f64, dt: f64) -> u64 {
        let _ = (now, dt);
        0
    }

    /// [`Shaper::hint_stable_steps`] sharpened with a demand promise:
    /// the bound may additionally assume that every one of those
    /// `transmit` calls carries **exactly** `demand_bits` of demand.
    ///
    /// The event-driven fabric engine can make that promise because the
    /// cached max-min allocation is constant within a window and every
    /// in-window flow demands `rate * dt` (completion crossings bound
    /// the window separately), so per-node demand is a per-step
    /// constant. Knowing the demand turns the token bucket's worst-case
    /// crossing bound into a sharp one: under sustained demand at or
    /// above the refill rate the budget is non-increasing, so a
    /// depleted bucket is *pinned* in its throttled regime instead of
    /// being one idle tick away from re-crossing the hint threshold.
    /// The default ignores the promise and delegates to the
    /// demand-agnostic bound, which is always safe.
    fn hint_stable_steps_busy(&self, now: f64, dt: f64, demand_bits: f64) -> u64 {
        let _ = demand_bits;
        self.hint_stable_steps(now, dt)
    }
}

/// Advance a clock by `steps` ticks of `dt` seconds, one addition per
/// tick — **never** the closed form `now + steps as f64 * dt`, which
/// rounds differently.
///
/// This is the single clock idiom shared by `Fabric::rest`, the
/// event-driven `Fabric::advance` idle jump, and
/// `measure::execute_rest`: batched engines may skip per-step *work*,
/// but the clock value they leave behind must be bitwise identical to
/// the stepped loop's.
pub fn advance_clock(now: f64, dt: f64, steps: u64) -> f64 {
    let mut t = now;
    for _ in 0..steps {
        t += dt;
    }
    t
}

/// Unconditioned constant-rate link (e.g. a physical NIC cap).
#[derive(Debug, Clone, Copy)]
pub struct StaticShaper {
    rate_bps: f64,
}

impl StaticShaper {
    /// A shaper that always admits `rate_bps`.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps >= 0.0, "rate must be non-negative");
        StaticShaper { rate_bps }
    }
}

impl Shaper for StaticShaper {
    fn transmit(&mut self, _now: f64, dt: f64, demand_bits: f64) -> f64 {
        demand_bits.min(self.rate_bps * dt)
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        self.rate_bps
    }

    fn reset(&mut self) {}

    fn rest(&mut self, _now: f64, _dt: f64, _steps: u64) {
        // Stateless: an idle transmit observes nothing and changes
        // nothing, so any number of them is a no-op.
    }

    fn hint_stable_steps(&self, _now: f64, _dt: f64) -> u64 {
        // The hint is a construction-time constant.
        u64::MAX
    }
}

/// Series composition: traffic must pass both shapers (e.g. a token
/// bucket behind a 10 Gbps physical port). The admitted volume is the
/// minimum of the two; both shapers observe the admitted traffic.
pub struct MinShaper<A, B> {
    a: A,
    b: B,
}

impl<A: Shaper, B: Shaper> MinShaper<A, B> {
    /// Compose two shapers in series.
    pub fn new(a: A, b: B) -> Self {
        MinShaper { a, b }
    }
}

impl<A: Shaper, B: Shaper> Shaper for MinShaper<A, B> {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        // Ask the tighter stage first with the full demand, then pass the
        // admitted volume through the other stage.
        let granted_a = self.a.transmit(now, dt, demand_bits);
        self.b.transmit(now, dt, granted_a)
    }

    fn rate_hint(&self, now: f64) -> f64 {
        self.a.rate_hint(now).min(self.b.rate_hint(now))
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
    }

    fn token_budget_bits(&self) -> Option<f64> {
        self.a.token_budget_bits().or_else(|| self.b.token_budget_bits())
    }

    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        // The loop would call a.transmit(t, dt, 0.0) then
        // b.transmit(t, dt, granted_a) each tick; grants are bounded by
        // demand, so granted_a == 0.0 and both stages see pure idle
        // ticks. Resting each stage independently is therefore exact.
        self.a.rest(now, dt, steps);
        self.b.rest(now, dt, steps);
    }

    fn hint_stable_steps(&self, now: f64, dt: f64) -> u64 {
        // The composed hint is min(a, b): if both operands are bitwise
        // pinned for k steps, so is their minimum.
        self.a
            .hint_stable_steps(now, dt)
            .min(self.b.hint_stable_steps(now, dt))
    }

    fn hint_stable_steps_busy(&self, now: f64, dt: f64, demand_bits: f64) -> u64 {
        // Stage `a` sees the caller's demand verbatim; stage `b` sees
        // whatever `a` admits, which varies per step, so only the
        // demand-agnostic bound is sound for it.
        self.a
            .hint_stable_steps_busy(now, dt, demand_bits)
            .min(self.b.hint_stable_steps(now, dt))
    }
}

impl Shaper for Box<dyn Shaper + Send> {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        (**self).transmit(now, dt, demand_bits)
    }

    fn rate_hint(&self, now: f64) -> f64 {
        (**self).rate_hint(now)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn token_budget_bits(&self) -> Option<f64> {
        (**self).token_budget_bits()
    }

    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        (**self).rest(now, dt, steps)
    }

    fn hint_stable_steps(&self, now: f64, dt: f64) -> u64 {
        (**self).hint_stable_steps(now, dt)
    }

    fn hint_stable_steps_busy(&self, now: f64, dt: f64, demand_bits: f64) -> u64 {
        (**self).hint_stable_steps_busy(now, dt, demand_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gbps;

    #[test]
    fn static_shaper_caps_demand() {
        let mut s = StaticShaper::new(gbps(10.0));
        assert_eq!(s.transmit(0.0, 1.0, gbps(4.0)), gbps(4.0));
        assert_eq!(s.transmit(1.0, 1.0, gbps(40.0)), gbps(10.0));
        assert_eq!(s.rate_hint(0.0), gbps(10.0));
    }

    #[test]
    fn min_shaper_takes_tighter_stage() {
        let mut s = MinShaper::new(StaticShaper::new(gbps(10.0)), StaticShaper::new(gbps(4.0)));
        assert_eq!(s.transmit(0.0, 1.0, f64::INFINITY), gbps(4.0));
        assert_eq!(s.rate_hint(0.0), gbps(4.0));
    }

    #[test]
    fn min_shaper_asymmetric_inner_rests() {
        use super::TokenBucket;
        use crate::units::gbit;
        // Two token-bucket stages with different capacities and idle
        // refills: their idle recurrences reach the capacity fixed
        // point after *different* step counts (~5 s vs ~180 s here).
        // Stage-wise rest must match the composed idle loop bitwise —
        // including the early-exiting stage sitting at its cap while
        // the slow stage keeps refilling.
        let mk = || {
            MinShaper::new(
                TokenBucket::sigma_rho(gbit(20.0), gbps(1.0), gbps(10.0))
                    .with_idle_refill(gbps(4.0)),
                TokenBucket::sigma_rho(gbit(90.0), gbps(2.0), gbps(9.0))
                    .with_idle_refill(gbps(0.5)),
            )
        };
        let (mut fast, mut slow) = (mk(), mk());
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 2.0, f64::INFINITY); // drain both stages
        }
        // 400 ticks of 0.1 s: stage a caps out early, stage b does not.
        fast.rest(2.0, 0.1, 400);
        let mut t = 2.0;
        for _ in 0..400 {
            slow.transmit(t, 0.1, 0.0);
            t += 0.1;
        }
        // token_budget_bits surfaces stage a; stage b is pinned through
        // the grants it admits over a long follow-up burst.
        assert_eq!(
            fast.token_budget_bits().unwrap().to_bits(),
            slow.token_budget_bits().unwrap().to_bits(),
            "stage-a budget diverged"
        );
        for k in 0..50 {
            let tt = t + k as f64 * 0.1;
            let gf = fast.transmit(tt, 0.1, f64::INFINITY);
            let gs = slow.transmit(tt, 0.1, f64::INFINITY);
            assert_eq!(gf.to_bits(), gs.to_bits(), "burst step {k} diverged");
        }
    }

    #[test]
    fn boxed_shaper_dispatch() {
        let mut s: Box<dyn Shaper + Send> = Box::new(StaticShaper::new(gbps(2.0)));
        assert_eq!(s.transmit(0.0, 0.5, f64::INFINITY), gbps(1.0));
        s.reset();
        assert_eq!(s.rate_hint(0.0), gbps(2.0));
    }
}
