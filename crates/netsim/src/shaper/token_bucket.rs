//! The EC2-style token-bucket shaper (paper Section 3.3).
//!
//! Operation, per the paper's reverse engineering:
//!
//! * A VM starts with a **budget** of tokens (bits). While tokens
//!   remain, transmission is admitted at the **high rate** (10 Gbps on
//!   c5.xlarge) — the bucket's *peak rate*.
//! * Every transmitted bit consumes a token. Tokens replenish at the
//!   **refill rate** — "approximately 1 Gbit token per second" on
//!   c5.xlarge.
//! * Once the bucket is empty, throughput collapses to the refill rate:
//!   this *is* the paper's **low rate** ("the QoS is limited to a low
//!   rate, e.g., 1 Gbps"), and it explains the paper's observation that
//!   "transmission at the capped rate is sufficient to keep it from
//!   filling back up" — the refill is consumed as it arrives, so the
//!   bucket only recovers while the network rests.
//!
//! This is the classic (σ, ρ, peak) token bucket: burst budget σ,
//! sustained rate ρ (= low rate), peak rate `high`. With the c5.xlarge
//! defaults a full-speed stream empties a 5000 Gbit budget in
//! `5000 / (10 − 1) ≈ 555 s` — matching the ~10 minutes of full-rate
//! transfer the paper observes before throttling (Figure 7) and the
//! time-to-empty boxplots of Figure 11.

use super::Shaper;

/// EC2-style token-bucket traffic shaper. See the module docs.
///
/// ```
/// use netsim::shaper::{Shaper, TokenBucket};
/// use netsim::units::{gbit, gbps};
///
/// // c5.xlarge: 5000 Gbit budget, 10 Gbps peak, 1 Gbps sustained.
/// let mut tb = TokenBucket::sigma_rho(gbit(5000.0), gbps(1.0), gbps(10.0));
/// assert!((tb.time_to_empty_full_speed() - 555.5).abs() < 1.0);
///
/// // A fresh VM bursts at the peak rate...
/// assert_eq!(tb.transmit(0.0, 1.0, f64::INFINITY), gbps(10.0));
/// // ...and an empty bucket sustains only the refill rate.
/// tb.set_budget_bits(0.0);
/// let granted = tb.transmit(1.0, 1.0, f64::INFINITY);
/// assert!((granted - gbps(1.0)).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum token budget in bits.
    capacity_bits: f64,
    /// Token budget a fresh VM starts with, in bits.
    initial_budget_bits: f64,
    /// Peak admission rate while tokens remain, bits/s.
    high_rate_bps: f64,
    /// Token replenishment rate, bits/s. Equals the sustained (low)
    /// throughput once the bucket is empty.
    refill_bps: f64,
    /// Replenishment rate while the VM is fully idle, bits/s. Defaults
    /// to `refill_bps`; some providers refill resting VMs faster.
    idle_refill_bps: f64,
    /// Current token budget in bits.
    budget_bits: f64,
}

impl TokenBucket {
    /// Create a bucket.
    ///
    /// * `initial_budget_bits` — tokens available at t=0 (≤ capacity).
    /// * `capacity_bits` — maximum tokens the bucket can hold.
    /// * `high_rate_bps` — peak rate while tokens remain.
    /// * `low_rate_bps` — sustained rate once empty (= token refill).
    /// * `refill_bps` — kept as an explicit parameter for clarity; the
    ///   throttled steady-state throughput equals this value.
    pub fn new(
        initial_budget_bits: f64,
        capacity_bits: f64,
        high_rate_bps: f64,
        low_rate_bps: f64,
        refill_bps: f64,
    ) -> Self {
        assert!(
            initial_budget_bits >= 0.0 && capacity_bits >= 0.0,
            "budget and capacity must be non-negative"
        );
        assert!(high_rate_bps >= low_rate_bps, "high rate must be >= low rate");
        assert!(
            low_rate_bps >= 0.0 && refill_bps >= 0.0,
            "rates must be non-negative"
        );
        assert!(
            (low_rate_bps - refill_bps).abs() <= 0.5 * low_rate_bps.max(refill_bps).max(1.0),
            "low rate and refill rate describe the same mechanism and must be close"
        );
        TokenBucket {
            capacity_bits,
            initial_budget_bits: initial_budget_bits.min(capacity_bits),
            high_rate_bps,
            refill_bps,
            idle_refill_bps: refill_bps,
            budget_bits: initial_budget_bits.min(capacity_bits),
        }
    }

    /// Simple constructor: (σ, ρ, peak) with capacity = initial budget.
    pub fn sigma_rho(budget_bits: f64, low_rate_bps: f64, high_rate_bps: f64) -> Self {
        TokenBucket::new(
            budget_bits,
            budget_bits,
            high_rate_bps,
            low_rate_bps,
            low_rate_bps,
        )
    }

    /// Set a faster refill rate applied only while the VM is idle.
    pub fn with_idle_refill(mut self, idle_refill_bps: f64) -> Self {
        assert!(idle_refill_bps >= 0.0, "idle refill rate must be non-negative");
        self.idle_refill_bps = idle_refill_bps;
        self
    }

    /// Remaining token budget in bits.
    pub fn budget_bits(&self) -> f64 {
        self.budget_bits
    }

    /// Override the current budget (used to model "the system is left in
    /// an unknown state" — Section 4.2's partially-depleted buckets).
    pub fn set_budget_bits(&mut self, bits: f64) {
        self.budget_bits = bits.clamp(0.0, self.capacity_bits);
    }

    /// The peak (tokens available) rate, bits/s.
    pub fn high_rate_bps(&self) -> f64 {
        self.high_rate_bps
    }

    /// The sustained (bucket empty) rate, bits/s.
    pub fn low_rate_bps(&self) -> f64 {
        self.refill_bps
    }

    /// Token refill rate, bits/s.
    pub fn refill_bps(&self) -> f64 {
        self.refill_bps
    }

    /// Maximum token budget, bits.
    pub fn capacity_bits(&self) -> f64 {
        self.capacity_bits
    }

    /// Predicted seconds of full-speed transfer until the bucket empties
    /// from the *current* budget (infinite if the bucket never drains).
    pub fn time_to_empty_full_speed(&self) -> f64 {
        let drain = self.high_rate_bps - self.refill_bps;
        if drain <= 0.0 {
            f64::INFINITY
        } else {
            self.budget_bits / drain
        }
    }
}

impl Shaper for TokenBucket {
    fn transmit(&mut self, _now: f64, dt: f64, demand_bits: f64) -> f64 {
        debug_assert!(dt > 0.0);
        let refill = if demand_bits <= 0.0 {
            self.idle_refill_bps
        } else {
            self.refill_bps
        };
        self.budget_bits = (self.budget_bits + refill * dt).min(self.capacity_bits);
        if demand_bits <= 0.0 {
            return 0.0;
        }
        // Every bit spends a token; the peak rate caps the burst.
        let granted = demand_bits
            .min(self.high_rate_bps * dt)
            .min(self.budget_bits);
        self.budget_bits -= granted;
        granted
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        // "High" while the budget can sustain the peak rate for at least
        // a brief burst; otherwise the sustained (refill) rate.
        if self.budget_bits > self.high_rate_bps * 0.05 {
            self.high_rate_bps
        } else {
            self.refill_bps
        }
    }

    fn reset(&mut self) {
        self.budget_bits = self.initial_budget_bits;
    }

    fn token_budget_bits(&self) -> Option<f64> {
        Some(self.budget_bits)
    }

    fn hint_stable_steps(&self, _now: f64, dt: f64) -> u64 {
        // The hint flips exactly when the budget crosses the burst
        // threshold `high_rate * 0.05` (see `rate_hint`). One transmit
        // moves the budget by at most `max(high, refill, idle) * dt`
        // bits in either direction: a grant removes at most
        // `high_rate * dt` (the peak-rate cap applies before the budget
        // cap) and a refill adds at most `max(refill, idle) * dt` (the
        // capacity cap only shrinks the upward move). So the crossing
        // needs at least `distance / max_move` steps; the fixed-point
        // division is exact on the operands the recurrence actually
        // uses, and the `- 1` guard absorbs accumulated rounding of the
        // real-arithmetic bound.
        if self.high_rate_bps.to_bits() == self.refill_bps.to_bits() {
            // Degenerate bucket: both hint branches return the same
            // bit pattern, so no crossing is ever observable.
            return u64::MAX;
        }
        let max_move = self.high_rate_bps.max(self.refill_bps).max(self.idle_refill_bps) * dt;
        if max_move <= 0.0 {
            return u64::MAX;
        }
        let distance = (self.budget_bits - self.high_rate_bps * 0.05).abs();
        ((distance / max_move).floor() as u64).saturating_sub(1)
    }

    fn hint_stable_steps_busy(&self, now: f64, dt: f64, demand_bits: f64) -> u64 {
        // With a known constant per-step demand the budget recurrence
        // becomes monotone, and the worst-case `max_move` bound of
        // `hint_stable_steps` sharpens to the actual drift direction:
        //
        // * `demand >= refill*dt` — a grant consumes at least the
        //   refill, so the budget is non-increasing. Below the
        //   threshold it is *pinned* in the throttled regime (this is
        //   the depleted fig19 steady state); above, only the downward
        //   crossing at rate ≤ `(high - refill)*dt` per step matters.
        // * `demand < refill*dt` (incl. idle, which refills at the idle
        //   rate) — the grant equals the demand, so the budget rises by
        //   exactly `refill*dt - demand` per step: moving away from the
        //   threshold when above it, toward it at a known rate when
        //   below.
        //
        // Monotonicity is a real-arithmetic argument; in floating point
        // each step may still drift ~1 ulp the "wrong" way, so every
        // branch also bounds the window by `distance / drift` with a
        // per-step drift allowance ~1e3 ulp — astronomically larger
        // than the true rounding error, yet still yielding multi-
        // billion-step windows. The `- 2` guards absorb the rounding of
        // the bound computation itself.
        //
        // One wrinkle both "above" branches must carry: when the budget
        // sits within one refill increment of capacity, the capacity cap
        // truncates the refill, so the first step can drop the budget by
        // up to `refill*dt` more than the steady recurrence would (the
        // refill is swallowed while the grant is not). The truncation
        // has a fixed point — after one capped step the budget is at
        // least `refill*dt` below capacity and the cap never binds again
        // within the regime — so a single `refill_step` of extra
        // distance slack makes the bounds sound.
        if self.high_rate_bps.to_bits() == self.refill_bps.to_bits() {
            return u64::MAX; // both hint branches are the same bits
        }
        if self.refill_bps > self.high_rate_bps || self.capacity_bits < self.refill_bps * dt {
            // Pathological configurations (refill above the peak rate,
            // or a capacity smaller than one refill increment, where
            // the capacity cap can truncate a sub-refill grant) that
            // the monotonicity argument does not cover; fall back to
            // the worst-case bound.
            return self.hint_stable_steps(now, dt);
        }
        let threshold = self.high_rate_bps * 0.05;
        let refill_step = self.refill_bps * dt;
        let drift = (self.budget_bits.abs() + refill_step) * 1e-12 + 1e-9;
        let steps = |distance: f64, per_step: f64| -> u64 {
            ((distance / per_step).floor() as u64).saturating_sub(2)
        };
        if demand_bits > 0.0 && demand_bits >= refill_step {
            if self.budget_bits <= threshold {
                // Pinned below: only FP drift can cross upward.
                steps(threshold - self.budget_bits, drift)
            } else {
                // Falling at ≤ (high-refill)*dt per step, plus the
                // one-time cap-truncation drop of ≤ refill*dt.
                let max_down = (self.high_rate_bps - self.refill_bps) * dt;
                steps(
                    self.budget_bits - threshold - refill_step,
                    max_down.max(drift),
                )
            }
        } else {
            // The grant equals the demand (budget and peak both exceed
            // a sub-refill demand), so the budget trajectory never goes
            // below `min(budget, capacity - demand)` — rising until the
            // cap's fixed point `capacity - demand`, then parked there.
            let served = demand_bits.max(0.0);
            if self.budget_bits > threshold {
                // Above and staying at or above the trajectory floor:
                // only FP drift can cross downward.
                let floor = self.budget_bits.min(self.capacity_bits - served);
                steps(floor - threshold, drift)
            } else {
                let up = if demand_bits <= 0.0 {
                    self.idle_refill_bps * dt
                } else {
                    refill_step - demand_bits
                };
                steps(threshold - self.budget_bits, up + drift)
            }
        }
    }

    fn rest(&mut self, _now: f64, _dt: f64, steps: u64) {
        // Each idle tick performs budget = (budget + idle_refill*dt)
        // .min(capacity) and nothing else. The iteration is monotone
        // with a fixed point (the capacity cap, or immediately when the
        // refill increment is zero), so we run the same scalar update
        // and exit as soon as it stops moving — bitwise identical to
        // the full loop, which would keep producing the same value.
        let x = self.idle_refill_bps * _dt;
        for _ in 0..steps {
            let next = (self.budget_bits + x).min(self.capacity_bits);
            if next == self.budget_bits {
                break;
            }
            self.budget_bits = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{gbit, gbps};

    fn c5_xlarge() -> TokenBucket {
        TokenBucket::sigma_rho(gbit(5000.0), gbps(1.0), gbps(10.0))
    }

    /// Step a bucket at full demand for `secs`, returning total granted bits.
    fn drive(tb: &mut TokenBucket, start: f64, secs: f64, dt: f64) -> f64 {
        let steps = (secs / dt).round() as usize;
        let mut total = 0.0;
        for i in 0..steps {
            total += tb.transmit(start + i as f64 * dt, dt, f64::INFINITY);
        }
        total
    }

    #[test]
    fn full_speed_until_depletion_then_throttled() {
        let mut tb = c5_xlarge();
        // First 100 s: full 10 Gbps.
        let bits = drive(&mut tb, 0.0, 100.0, 0.1);
        assert!((bits - gbps(10.0) * 100.0).abs() / bits < 1e-9);

        // Drain the rest and verify the throttled steady state is the
        // refill rate (~1 Gbps), independent of the step size.
        drive(&mut tb, 100.0, 500.0, 0.1);
        let bits = drive(&mut tb, 600.0, 100.0, 0.1);
        let rate = bits / 100.0;
        assert!(
            (rate - gbps(1.0)).abs() < gbps(0.05),
            "throttled rate {rate}"
        );
        // Same steady state with a very different step.
        let bits = drive(&mut tb, 700.0, 100.0, 0.017);
        let rate = bits / 100.0;
        assert!(
            (rate - gbps(1.0)).abs() < gbps(0.05),
            "throttled rate (fine dt) {rate}"
        );
    }

    #[test]
    fn depletion_time_matches_paper_ten_minutes() {
        let tb = c5_xlarge();
        let tte = tb.time_to_empty_full_speed();
        // ~555 s ≈ "about 10 minutes of continuous transfer".
        assert!((tte - 555.5).abs() < 1.0, "tte {tte}");
        // And the simulated bucket actually depletes then.
        let mut tb = c5_xlarge();
        drive(&mut tb, 0.0, 550.0, 0.1);
        assert!(tb.rate_hint(550.0) == gbps(10.0));
        drive(&mut tb, 550.0, 10.0, 0.1);
        assert!(tb.rate_hint(560.0) == gbps(1.0));
    }

    #[test]
    fn rest_zero_steps_and_zero_dt_are_noops() {
        // `steps == 0` must not move the budget at all, and `dt == 0`
        // must be the bitwise fixed point of the idle recurrence
        // (`budget + 0` then the capacity cap) no matter how many steps
        // the window nominally spans.
        let mut tb = c5_xlarge();
        tb.set_budget_bits(gbit(7.0));
        let before = tb.budget_bits().to_bits();
        tb.rest(0.0, 0.1, 0);
        assert_eq!(tb.budget_bits().to_bits(), before, "zero steps moved the budget");
        // `dt == 0`: the refill increment is exactly 0.0, so the idle
        // recurrence is at its fixed point immediately (`transmit`
        // itself rejects dt == 0, so the closed form is the only code
        // that can see this window shape — via `Fabric::rest`'s
        // degenerate configs).
        tb.rest(0.0, 0.0, 1_000);
        assert_eq!(tb.budget_bits().to_bits(), before, "zero dt moved the budget");
    }

    #[test]
    fn rest_spanning_exactly_one_refill_boundary() {
        // Budget placed so the capacity cap is reached *exactly* at a
        // step boundary (all quantities exact in f64): the closed
        // form's early exit must neither overshoot the cap nor stop a
        // step short, and a window extending past the boundary must sit
        // at the fixed point for the remainder.
        let dt = 0.1;
        let cap = gbit(50.0);
        let refill_step = gbps(1.0) * dt; // 1e8, exact
        let mk = || {
            let mut tb = TokenBucket::sigma_rho(cap, gbps(1.0), gbps(10.0));
            tb.set_budget_bits(cap - 10.0 * refill_step);
            tb
        };
        // Exactly at the boundary: 10 idle steps hit the cap bitwise.
        let mut fast = mk();
        fast.rest(0.0, dt, 10);
        assert_eq!(fast.budget_bits().to_bits(), cap.to_bits());
        // Spanning the boundary: 25 steps, fixed point after 10.
        let (mut fast, mut slow) = (mk(), mk());
        fast.rest(0.0, dt, 25);
        for i in 0..25 {
            slow.transmit(i as f64 * dt, dt, 0.0);
        }
        assert_eq!(fast.budget_bits().to_bits(), slow.budget_bits().to_bits());
        assert_eq!(fast.budget_bits().to_bits(), cap.to_bits());
    }

    #[test]
    fn resting_refills_budget() {
        let mut tb = c5_xlarge();
        tb.set_budget_bits(0.0);
        // Rest 60 s (zero demand steps).
        for i in 0..600 {
            tb.transmit(i as f64 * 0.1, 0.1, 0.0);
        }
        assert!((tb.budget_bits() - gbit(60.0)).abs() < gbit(0.01));
    }

    #[test]
    fn low_rate_traffic_prevents_refill() {
        let mut tb = c5_xlarge();
        tb.set_budget_bits(0.0);
        // Continuous full demand for 100 s: tokens consumed on arrival.
        drive(&mut tb, 0.0, 100.0, 0.1);
        assert!(tb.budget_bits() < gbit(0.2), "budget {}", tb.budget_bits());
    }

    #[test]
    fn duty_cycle_burst_starts_high_then_drops() {
        // Figure 14: with a nearly-empty bucket, each 10 s burst starts
        // at 10 Gbps and collapses to ~1 Gbps once the 30 s of accrued
        // tokens (30 Gbit) are spent, i.e. after ~30/9 ≈ 3.3 s.
        let mut tb = c5_xlarge();
        tb.set_budget_bits(0.0);
        // Rest 30 s.
        for i in 0..300 {
            tb.transmit(i as f64 * 0.1, 0.1, 0.0);
        }
        // Burst 10 s, recording per-second throughput.
        let mut per_second = Vec::new();
        for s in 0..10 {
            let bits = drive(&mut tb, 30.0 + s as f64, 1.0, 0.1);
            per_second.push(bits);
        }
        assert!(per_second[0] > gbps(9.9), "first second {}", per_second[0]);
        assert!(per_second[1] > gbps(9.9));
        assert!(per_second[2] > gbps(9.9)); // depletion during 4th second
        assert!(per_second[4] < gbps(1.5), "fifth second {}", per_second[4]);
        assert!(per_second[9] <= gbps(1.01));
    }

    #[test]
    fn demand_below_low_rate_is_fully_served() {
        let mut tb = c5_xlarge();
        tb.set_budget_bits(0.0);
        let granted = tb.transmit(0.0, 1.0, gbps(0.5));
        assert!((granted - gbps(0.5)).abs() < 1.0);
    }

    #[test]
    fn partial_demand_drains_at_demand_minus_refill() {
        let mut tb = c5_xlarge();
        drive_at(&mut tb, gbps(3.0), 10.0, 0.1);
        // Net drain = (3 − 1) Gbps × 10 s = 20 Gbit, minus the first
        // step's refill which is lost to the capacity cap.
        let expected = gbit(5000.0) - gbit(20.0) - gbit(0.1);
        assert!(
            (tb.budget_bits() - expected).abs() < gbit(0.01),
            "budget {}",
            tb.budget_bits()
        );
    }

    fn drive_at(tb: &mut TokenBucket, rate: f64, secs: f64, dt: f64) {
        let steps = (secs / dt).round() as usize;
        for i in 0..steps {
            tb.transmit(i as f64 * dt, dt, rate * dt);
        }
    }

    #[test]
    fn rate_hint_tracks_bucket_state() {
        let mut tb = c5_xlarge();
        assert_eq!(tb.rate_hint(0.0), gbps(10.0));
        tb.set_budget_bits(0.0);
        assert_eq!(tb.rate_hint(0.0), gbps(1.0));
    }

    #[test]
    fn reset_restores_initial_budget() {
        let mut tb = c5_xlarge();
        drive(&mut tb, 0.0, 1000.0, 0.1);
        assert!(tb.budget_bits() < gbit(5000.0));
        tb.reset();
        assert_eq!(tb.budget_bits(), gbit(5000.0));
    }

    #[test]
    fn budget_never_exceeds_capacity() {
        let mut tb = TokenBucket::new(gbit(10.0), gbit(20.0), gbps(10.0), gbps(5.0), gbps(5.0));
        for i in 0..1000 {
            tb.transmit(i as f64 * 0.1, 0.1, 0.0);
        }
        assert!((tb.budget_bits() - gbit(20.0)).abs() < 1.0);
    }

    #[test]
    fn idle_refill_can_be_faster() {
        let mut tb = c5_xlarge().with_idle_refill(gbps(10.0));
        tb.set_budget_bits(0.0);
        for i in 0..100 {
            tb.transmit(i as f64 * 0.1, 0.1, 0.0);
        }
        assert!((tb.budget_bits() - gbit(100.0)).abs() < gbit(0.01));
    }

    #[test]
    fn throttled_throughput_is_step_size_invariant() {
        for dt in [0.01, 0.1, 1.0] {
            let mut tb = c5_xlarge();
            tb.set_budget_bits(0.0);
            let bits = drive(&mut tb, 0.0, 50.0, dt);
            assert!(
                (bits / 50.0 - gbps(1.0)).abs() < gbps(0.03),
                "dt={dt} rate={}",
                bits / 50.0
            );
        }
    }
}
