//! Contention-noise shaper for clouds without QoS (HPCCloud).
//!
//! The private research cloud in the paper applies no QoS mechanism, so
//! the observed variability comes from tenant contention. Because such
//! systems are "orders of magnitude smaller than public clouds ...
//! there is less statistical multiplexing to smooth out variation"
//! (F3.2): a single noisy neighbour moves the needle. The measured
//! 8-core HPCCloud pair ranges 7.7–10.4 Gbps over a week (Figure 4)
//! with consecutive-sample swings up to 33%.
//!
//! [`NoiseShaper`] models capacity as
//! `capacity * (1 - ar1_noise - contention)` where contention episodes
//! arrive as a Poisson process, steal a heavy-tailed fraction of the
//! link, and last an exponential time — the classic on/off neighbour.

use super::Shaper;
use crate::rng::{Ar1, SimRng};

/// Configuration for [`NoiseShaper`].
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Uncontended link capacity, bits/s.
    pub capacity_bps: f64,
    /// Stationary std-dev of the fast AR(1) noise (fraction of capacity).
    pub ar_sigma: f64,
    /// Per-step lag-1 autocorrelation of the fast noise.
    pub ar_phi: f64,
    /// Mean arrivals of contention episodes per second.
    pub contention_rate_per_s: f64,
    /// Minimum fraction of capacity stolen by an episode.
    pub contention_min_frac: f64,
    /// Pareto shape for episode magnitude (larger = lighter tail).
    pub contention_alpha: f64,
    /// Largest fraction a single episode may steal.
    pub contention_max_frac: f64,
    /// Mean episode duration, seconds.
    pub contention_mean_dur_s: f64,
}

impl NoiseConfig {
    /// The paper's HPCCloud 8-core profile: 10.4 Gbps ceiling, dips to
    /// ~7.7 Gbps under contention.
    pub fn hpccloud() -> Self {
        NoiseConfig {
            capacity_bps: 10.4e9,
            ar_sigma: 0.012,
            ar_phi: 0.9,
            contention_rate_per_s: 1.0 / 1800.0,
            contention_min_frac: 0.04,
            contention_alpha: 2.0,
            contention_max_frac: 0.26,
            contention_mean_dur_s: 400.0,
        }
    }
}

/// A contention episode currently degrading the link.
#[derive(Debug, Clone, Copy)]
struct Episode {
    /// Fraction of capacity stolen.
    magnitude: f64,
    /// Simulated time at which the episode ends.
    ends_at: f64,
}

/// Stochastic-noise shaper for non-QoS clouds. See the module docs.
pub struct NoiseShaper {
    cfg: NoiseConfig,
    rng: SimRng,
    ar: Ar1,
    episodes: Vec<Episode>,
    seed: u64,
}

impl NoiseShaper {
    /// Create a shaper from a configuration and seed.
    pub fn new(cfg: NoiseConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let ar = Ar1::new(cfg.ar_phi, cfg.ar_sigma, &mut rng);
        NoiseShaper {
            cfg,
            rng,
            ar,
            episodes: Vec::new(),
            seed,
        }
    }

    /// Total fraction currently stolen by active episodes (capped).
    fn contention_frac(&self) -> f64 {
        let sum: f64 = self.episodes.iter().map(|e| e.magnitude).sum();
        sum.min(self.cfg.contention_max_frac)
    }

    fn step_state(&mut self, now: f64, dt: f64) {
        self.ar.step(&mut self.rng);
        self.episodes.retain(|e| e.ends_at > now);
        // Poisson arrivals within dt (dt is small; Bernoulli suffices).
        if self.rng.chance(self.cfg.contention_rate_per_s * dt) {
            let magnitude = self
                .rng
                .pareto(self.cfg.contention_min_frac, self.cfg.contention_alpha)
                .min(self.cfg.contention_max_frac);
            let dur = self.rng.exponential(1.0 / self.cfg.contention_mean_dur_s);
            self.episodes.push(Episode {
                magnitude,
                ends_at: now + dur,
            });
        }
    }

    /// Current effective rate in bits/s.
    fn current_rate(&self) -> f64 {
        let frac = 1.0 - self.contention_frac() + self.ar.value();
        (self.cfg.capacity_bps * frac).clamp(0.0, self.cfg.capacity_bps)
    }
}

impl Shaper for NoiseShaper {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        debug_assert!(dt > 0.0);
        self.step_state(now, dt);
        if demand_bits <= 0.0 {
            return 0.0;
        }
        demand_bits.min(self.current_rate() * dt)
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        self.current_rate()
    }

    fn reset(&mut self) {
        let mut rng = SimRng::new(self.seed);
        self.ar = Ar1::new(self.cfg.ar_phi, self.cfg.ar_sigma, &mut rng);
        self.rng = rng;
        self.episodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gbps;

    /// One week of 10-second samples at full demand.
    fn week_samples(seed: u64) -> Vec<f64> {
        let mut s = NoiseShaper::new(NoiseConfig::hpccloud(), seed);
        let dt = 1.0;
        let mut samples = Vec::new();
        let mut t = 0.0;
        for _ in 0..60_480 {
            // 1 week / 10 s
            let mut bits = 0.0;
            for _ in 0..10 {
                bits += s.transmit(t, dt, f64::INFINITY);
                t += dt;
            }
            samples.push(bits / 10.0);
        }
        samples
    }

    #[test]
    fn range_matches_hpccloud_measurements() {
        let samples = week_samples(1);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max <= gbps(10.4) + 1.0, "max {max}");
        assert!(max > gbps(10.0), "max {max}");
        assert!(min < gbps(9.5), "min {min} — expected contention dips");
        assert!(min > gbps(7.0), "min {min}");
    }

    #[test]
    fn variability_is_week_scale_not_constant() {
        let samples = week_samples(2);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        let cov = sd / mean;
        assert!(cov > 0.005 && cov < 0.15, "CoV {cov}");
    }

    #[test]
    fn reset_reproduces() {
        let mut s = NoiseShaper::new(NoiseConfig::hpccloud(), 3);
        let a: Vec<f64> = (0..100).map(|i| s.transmit(i as f64, 1.0, 1e10)).collect();
        s.reset();
        let b: Vec<f64> = (0..100).map(|i| s.transmit(i as f64, 1.0, 1e10)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn idle_steps_consume_no_bandwidth() {
        let mut s = NoiseShaper::new(NoiseConfig::hpccloud(), 4);
        assert_eq!(s.transmit(0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn episodes_expire() {
        let cfg = NoiseConfig {
            contention_rate_per_s: 10.0, // very frequent for the test
            contention_mean_dur_s: 0.5,
            ..NoiseConfig::hpccloud()
        };
        let mut s = NoiseShaper::new(cfg, 5);
        for i in 0..200 {
            s.transmit(i as f64 * 0.1, 0.1, f64::INFINITY);
        }
        // After a long quiet period (no arrivals possible with rate 0).
        s.cfg.contention_rate_per_s = 0.0;
        for i in 200..400 {
            s.transmit(i as f64 * 0.1, 0.1, f64::INFINITY);
        }
        assert!(s.episodes.is_empty());
    }
}
