//! Empirical-distribution shaper (the paper's Ballani A–H emulation).
//!
//! Section 2.1 emulates eight real-world clouds whose bandwidth
//! distributions are known only through percentiles (1st, 25th, 50th,
//! 75th, 99th — Figure 2, from Ballani et al.). The methodology:
//! "we limit the bandwidth achieved by machines according to
//! distributions A−H. We uniformly sample bandwidth values from these
//! distributions every x ∈ {5, 50} seconds."
//!
//! [`QuantileDist`] represents a distribution by quantile points with
//! piecewise-linear interpolation of the inverse CDF; [`EmpiricalShaper`]
//! re-samples a rate from it at a fixed interval.

use super::Shaper;
use crate::rng::SimRng;

/// A distribution defined by quantile points `(p, value)` with
/// `0 <= p <= 1`, interpolated piecewise-linearly between points and
/// clamped to the extreme points outside their range.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileDist {
    points: Vec<(f64, f64)>,
}

impl QuantileDist {
    /// Build from quantile points. Points are sorted by probability;
    /// panics if fewer than two points, probabilities outside `[0,1]`,
    /// or values not non-decreasing in probability.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two quantile points");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in points.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "quantile values must be non-decreasing: {:?}",
                w
            );
        }
        for &(p, _) in &points {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        QuantileDist { points }
    }

    /// Convenience: build from the five percentiles of the paper's
    /// box-and-whisker plots (1st, 25th, 50th, 75th, 99th).
    pub fn from_box(p1: f64, p25: f64, p50: f64, p75: f64, p99: f64) -> Self {
        QuantileDist::new(vec![
            (0.01, p1),
            (0.25, p25),
            (0.50, p50),
            (0.75, p75),
            (0.99, p99),
        ])
    }

    /// Inverse CDF at probability `p` (clamped to the defined range).
    pub fn quantile(&self, p: f64) -> f64 {
        let first = self.points[0];
        let last = *self.points.last().unwrap_or(&first);
        if p <= first.0 {
            return first.1;
        }
        if p >= last.0 {
            return last.1;
        }
        for w in self.points.windows(2) {
            let (p0, v0) = w[0];
            let (p1, v1) = w[1];
            if p <= p1 {
                let f = if p1 > p0 { (p - p0) / (p1 - p0) } else { 1.0 };
                return v0 + f * (v1 - v0);
            }
        }
        last.1
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Draw a sample: uniform `u`, then invert the CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.uniform())
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// The quantile points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Shaper that re-samples its rate from a [`QuantileDist`] every
/// `resample_interval_s` seconds. See the module docs.
pub struct EmpiricalShaper {
    dist: QuantileDist,
    resample_interval_s: f64,
    rng: SimRng,
    current_rate_bps: f64,
    next_resample_at: f64,
    seed: u64,
}

impl EmpiricalShaper {
    /// Create a shaper sampling `dist` (values in bits/s) every
    /// `resample_interval_s` seconds.
    pub fn new(dist: QuantileDist, resample_interval_s: f64, seed: u64) -> Self {
        assert!(resample_interval_s > 0.0, "resample interval must be positive");
        let mut rng = SimRng::new(seed);
        let current = dist.sample(&mut rng);
        EmpiricalShaper {
            dist,
            resample_interval_s,
            rng,
            current_rate_bps: current,
            next_resample_at: resample_interval_s,
            seed,
        }
    }

    fn maybe_resample(&mut self, now: f64) {
        while now >= self.next_resample_at {
            self.current_rate_bps = self.dist.sample(&mut self.rng);
            self.next_resample_at += self.resample_interval_s;
        }
    }
}

impl Shaper for EmpiricalShaper {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        debug_assert!(dt > 0.0);
        self.maybe_resample(now);
        if demand_bits <= 0.0 {
            return 0.0;
        }
        demand_bits.min(self.current_rate_bps * dt)
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        self.current_rate_bps
    }

    fn reset(&mut self) {
        self.rng = SimRng::new(self.seed);
        self.current_rate_bps = self.dist.sample(&mut self.rng);
        self.next_resample_at = self.resample_interval_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> QuantileDist {
        // A synthetic cloud: 100–900 Mbps.
        QuantileDist::from_box(100e6, 300e6, 500e6, 700e6, 900e6)
    }

    #[test]
    fn quantile_interpolation() {
        let d = dist();
        assert_eq!(d.median(), 500e6);
        assert_eq!(d.quantile(0.25), 300e6);
        // Midway between p25 and p50.
        assert!((d.quantile(0.375) - 400e6).abs() < 1.0);
        // Clamped at the ends.
        assert_eq!(d.quantile(0.0), 100e6);
        assert_eq!(d.quantile(1.0), 900e6);
        assert_eq!(d.iqr(), 400e6);
    }

    #[test]
    fn samples_lie_in_support_and_match_median() {
        let d = dist();
        let mut rng = SimRng::new(42);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (100e6..=900e6).contains(&s)));
        samples.sort_by(|a, b| a.total_cmp(b));
        let med = samples[samples.len() / 2];
        assert!((med - 500e6).abs() < 15e6, "median {med}");
    }

    #[test]
    fn resampling_happens_on_schedule() {
        let mut s = EmpiricalShaper::new(dist(), 5.0, 7);
        let r0 = s.rate_hint(0.0);
        // Within the first interval the rate is constant.
        s.transmit(0.0, 1.0, f64::INFINITY);
        s.transmit(4.9, 0.1, f64::INFINITY);
        assert_eq!(s.rate_hint(4.9), r0);
        // After 5 s it changes (with overwhelming probability).
        s.transmit(5.0, 0.1, f64::INFINITY);
        assert_ne!(s.rate_hint(5.0), r0);
    }

    #[test]
    fn granted_respects_current_rate() {
        let mut s = EmpiricalShaper::new(dist(), 5.0, 9);
        let rate = s.rate_hint(0.0);
        let granted = s.transmit(0.0, 2.0, f64::INFINITY);
        assert!((granted - rate * 2.0).abs() < 1.0);
    }

    #[test]
    fn reset_reproduces() {
        let mut s = EmpiricalShaper::new(dist(), 5.0, 11);
        let a: Vec<f64> = (0..100)
            .map(|i| s.transmit(i as f64, 1.0, f64::INFINITY))
            .collect();
        s.reset();
        let b: Vec<f64> = (0..100)
            .map(|i| s.transmit(i as f64, 1.0, f64::INFINITY))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_quantiles() {
        QuantileDist::new(vec![(0.1, 5.0), (0.9, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        QuantileDist::new(vec![(0.5, 1.0)]);
    }
}
