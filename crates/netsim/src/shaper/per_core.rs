//! The GCE-style per-core bandwidth QoS shaper.
//!
//! Google Cloud "enforces network bandwidth QoS by guaranteeing a
//! per-core amount of bandwidth" (2 Gbps per vCPU at the time of the
//! study). The paper's measurements (Figure 5) show the *opposite* of
//! EC2's pattern dependence: **longer streams achieve higher and more
//! stable bandwidth**, while short bursts (the 5-30 pattern) show a long
//! lower tail. The paper attributes this to Andromeda's virtual-network
//! design, "where idle flows use dedicated gateways for routing through
//! the virtual network": a flow that has been idle must re-establish its
//! fast path, losing throughput at the start of each burst.
//!
//! [`PerCoreQos`] models this as:
//!
//! * a hard ceiling `per_core_bps * cores`;
//! * a small efficiency factor (measured 8-core medians sit near
//!   15.5 Gbps against the advertised 16 Gbps);
//! * a per-burst *ramp-up penalty*: at the start of a burst the flow
//!   loses a random fraction of throughput that decays with burst age
//!   (time constant ~1.5 s). The penalty magnitude is heavy-tailed, so
//!   occasional bursts are much slower — producing the long lower
//!   whisker of the 5-30 box in Figure 5;
//! * correlated background noise (AR(1)) shared by all patterns.

use super::Shaper;
use crate::rng::{Ar1, SimRng};

/// Configuration for [`PerCoreQos`].
#[derive(Debug, Clone)]
pub struct PerCoreQosConfig {
    /// Guaranteed bandwidth per core, bits/s (GCE: 2 Gbps).
    pub per_core_bps: f64,
    /// Number of vCPUs.
    pub cores: u32,
    /// Fraction of the advertised ceiling achievable in steady state
    /// (captures virtualization overhead; measured ≈ 0.97).
    pub efficiency: f64,
    /// Mean fractional throughput lost at burst start (ramp-up penalty).
    pub ramp_penalty_mean: f64,
    /// Ramp-up decay time constant in seconds.
    pub ramp_tau_s: f64,
    /// Stationary std-dev of the multiplicative background noise.
    pub noise_sigma: f64,
    /// Lag-1 autocorrelation of the background noise per step.
    pub noise_phi: f64,
}

impl PerCoreQosConfig {
    /// The paper's measured 8-core GCE instance (advertised 16 Gbps,
    /// observed 13–15.8 Gbps depending on the access pattern).
    pub fn gce(cores: u32) -> Self {
        PerCoreQosConfig {
            per_core_bps: 2e9,
            cores,
            efficiency: 0.97,
            ramp_penalty_mean: 0.10,
            ramp_tau_s: 2.0,
            noise_sigma: 0.008,
            noise_phi: 0.85,
        }
    }
}

/// GCE-style per-core QoS shaper. See the module docs.
pub struct PerCoreQos {
    cfg: PerCoreQosConfig,
    rng: SimRng,
    noise: Ar1,
    /// Time the current burst began, or `None` while idle.
    burst_start: Option<f64>,
    /// Sampled ramp penalty for the current burst (fraction in [0, 1)).
    burst_penalty: f64,
    /// Construction seed, kept for `reset`.
    seed: u64,
}

impl PerCoreQos {
    /// Create a shaper with the given configuration and seed.
    pub fn new(cfg: PerCoreQosConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let noise = Ar1::new(cfg.noise_phi, cfg.noise_sigma, &mut rng);
        PerCoreQos {
            cfg,
            rng,
            noise,
            burst_start: None,
            burst_penalty: 0.0,
            seed,
        }
    }

    /// Advertised ceiling: `per_core_bps * cores`.
    pub fn advertised_bps(&self) -> f64 {
        self.cfg.per_core_bps * self.cfg.cores as f64
    }

    /// Sample a new per-burst ramp penalty: mostly small, occasionally
    /// large (heavy-tailed), clipped below 60%.
    fn sample_penalty(&mut self) -> f64 {
        let base = self.cfg.ramp_penalty_mean;
        // Pareto(x_min = base/2, alpha = 1.6) has mean ≈ 1.33 * base;
        // the heavy tail produces the occasional much-slower burst that
        // forms the long lower whisker of Figure 5's 5-30 box.
        let p = self.rng.pareto(base / 2.0, 1.6);
        p.min(0.8)
    }

    fn current_multiplier(&mut self, now: f64) -> f64 {
        // detlint:allow(D5, D11) -- invariant: only called while a burst is active, so burst_start is set; violation is a shaper state-machine bug worth a loud abort
        let age = now - self.burst_start.expect("multiplier during idle");
        let ramp_loss = self.burst_penalty * (-age / self.cfg.ramp_tau_s).exp();
        let noise = self.noise.value();
        ((1.0 - ramp_loss) * (1.0 + noise)).clamp(0.05, 1.0)
    }
}

impl Shaper for PerCoreQos {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        debug_assert!(dt > 0.0);
        self.noise.step(&mut self.rng);

        if demand_bits <= 0.0 {
            // Idle step: the flow's fast path decays. (Any idle step ends
            // the burst; the paper's patterns rest for 30 s, far longer
            // than Andromeda's flow idle timeout.)
            self.burst_start = None;
            return 0.0;
        }

        if self.burst_start.is_none() {
            self.burst_start = Some(now);
            self.burst_penalty = self.sample_penalty();
        }

        let ceiling = self.advertised_bps() * self.cfg.efficiency;
        let rate = ceiling * self.current_multiplier(now);
        demand_bits.min(rate * dt)
    }

    fn rate_hint(&self, _now: f64) -> f64 {
        self.advertised_bps() * self.cfg.efficiency
    }

    fn reset(&mut self) {
        let mut rng = SimRng::new(self.seed);
        self.noise = Ar1::new(self.cfg.noise_phi, self.cfg.noise_sigma, &mut rng);
        self.rng = rng;
        self.burst_start = None;
        self.burst_penalty = 0.0;
    }

    fn hint_stable_steps(&self, _now: f64, _dt: f64) -> u64 {
        // The hint is `advertised * efficiency` — a construction-time
        // constant. Burst state and noise affect only `transmit` grants,
        // which the event engine still performs step by step (they
        // advance the RNG), never the planning hint.
        u64::MAX
    }

    fn rest(&mut self, _now: f64, _dt: f64, steps: u64) {
        // An idle tick steps the AR(1) noise, clears the burst marker
        // and returns — `now`/`dt` are never read, so the loop reduces
        // to advancing the noise `steps` times. The RNG advance cannot
        // be skipped (bitwise state must match the loop's).
        if steps > 0 {
            self.burst_start = None;
        }
        for _ in 0..steps {
            self.noise.step(&mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gbps;

    fn drive_pattern(
        shaper: &mut PerCoreQos,
        on_s: f64,
        off_s: f64,
        total_s: f64,
        dt: f64,
    ) -> Vec<f64> {
        // Returns mean bandwidth of each on-burst.
        let mut burst_means = Vec::new();
        let mut t = 0.0;
        while t < total_s {
            let mut bits = 0.0;
            let mut tt = 0.0;
            while tt < on_s {
                bits += shaper.transmit(t + tt, dt, f64::INFINITY);
                tt += dt;
            }
            burst_means.push(bits / on_s);
            let mut rest = 0.0;
            while rest < off_s {
                shaper.transmit(t + on_s + rest, dt, 0.0);
                rest += dt;
            }
            t += on_s + off_s;
        }
        burst_means
    }

    #[test]
    fn steady_state_near_advertised() {
        let mut s = PerCoreQos::new(PerCoreQosConfig::gce(8), 1);
        // Warm up 30 s, then measure 60 s.
        for i in 0..300 {
            s.transmit(i as f64 * 0.1, 0.1, f64::INFINITY);
        }
        let mut bits = 0.0;
        for i in 300..900 {
            bits += s.transmit(i as f64 * 0.1, 0.1, f64::INFINITY);
        }
        let rate = bits / 60.0;
        assert!(rate > gbps(14.8) && rate < gbps(16.0), "steady rate {rate}");
    }

    #[test]
    fn short_bursts_are_slower_and_more_variable_than_long() {
        let mut s5 = PerCoreQos::new(PerCoreQosConfig::gce(8), 7);
        let five_thirty = drive_pattern(&mut s5, 5.0, 30.0, 3500.0, 0.1);
        let mut sf = PerCoreQos::new(PerCoreQosConfig::gce(8), 7);
        let full: Vec<f64> = {
            // 100 consecutive 10 s windows of a continuous stream.
            let mut means = Vec::new();
            for w in 0..100 {
                let mut bits = 0.0;
                for i in 0..100 {
                    bits += sf.transmit(w as f64 * 10.0 + i as f64 * 0.1, 0.1, f64::INFINITY);
                }
                means.push(bits / 10.0);
            }
            means
        };
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            mean(&five_thirty) < mean(&full),
            "5-30 {} vs full {}",
            mean(&five_thirty),
            mean(&full)
        );
        // The 5-30 pattern has the long lower tail (Figure 5).
        assert!(min(&five_thirty) < min(&full));
        assert!(min(&five_thirty) < gbps(14.0), "tail {}", min(&five_thirty));
    }

    #[test]
    fn bandwidth_stays_in_measured_range() {
        let mut s = PerCoreQos::new(PerCoreQosConfig::gce(8), 3);
        let bursts = drive_pattern(&mut s, 10.0, 30.0, 4000.0, 0.1);
        for b in &bursts {
            assert!(*b > gbps(6.0) && *b < gbps(16.0), "burst {b}");
        }
    }

    #[test]
    fn reset_reproduces_stream() {
        let mut s = PerCoreQos::new(PerCoreQosConfig::gce(4), 11);
        let a = drive_pattern(&mut s, 5.0, 30.0, 350.0, 0.1);
        s.reset();
        let b = drive_pattern(&mut s, 5.0, 30.0, 350.0, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_with_cores() {
        let s1 = PerCoreQos::new(PerCoreQosConfig::gce(1), 0);
        let s8 = PerCoreQos::new(PerCoreQosConfig::gce(8), 0);
        assert_eq!(s1.advertised_bps(), gbps(2.0));
        assert_eq!(s8.advertised_bps(), gbps(16.0));
        assert_eq!(s8.rate_hint(0.0), gbps(16.0) * 0.97);
    }
}
