//! Multi-node fluid fabric with max-min fair bandwidth sharing.
//!
//! The `bigdata` crate runs simulated Spark clusters on this fabric:
//! every node owns an egress [`Shaper`] (e.g. its VM's token bucket) and
//! an ingress capacity; shuffle transfers become [`FlowSpec`]s. Each
//! fluid step computes the **max-min fair** allocation (progressive
//! filling / water-filling) subject to per-node egress and ingress caps
//! and per-flow rate limits, then lets each node's shaper admit the
//! allocated egress volume — so token-bucket depletion on *one* node
//! slows exactly the flows that cross it, which is how the paper's
//! stragglers arise (Figure 18).

use crate::faults::FaultSchedule;
use crate::rng::SimRng;
use crate::shaper::Shaper;
use std::collections::BTreeMap;

/// Index of a node in the fabric.
pub type NodeId = usize;

/// Opaque identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// A requested transfer.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bits.
    pub bits: f64,
    /// Application-level rate cap in bits/s (`f64::INFINITY` if none).
    pub max_rate_bps: f64,
}

impl FlowSpec {
    /// An uncapped transfer of `bits` from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, bits: f64) -> Self {
        FlowSpec {
            src,
            dst,
            bits,
            max_rate_bps: f64::INFINITY,
        }
    }
}

#[derive(Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    remaining_bits: f64,
    last_rate_bps: f64,
}

struct Node<S> {
    shaper: S,
    ingress_cap_bps: f64,
    /// Bits sent during the last step (for per-node utilization traces).
    last_tx_bits: f64,
    /// Cumulative bits sent.
    total_tx_bits: f64,
}

/// The fabric. Generic over the shaper type so callers that need to
/// inspect shaper internals (e.g. token-bucket budgets for Figure 15/18)
/// can use a concrete `Fabric<TokenBucket>`, while heterogeneous setups
/// use `Fabric<Box<dyn Shaper + Send>>`.
pub struct Fabric<S> {
    nodes: Vec<Node<S>>,
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_flow: u64,
    now_s: f64,
    /// Optional aggregate core capacity in bits/s shared by every flow
    /// (models an oversubscribed datacenter core; `None` = full
    /// bisection bandwidth, the default).
    core_capacity_bps: Option<f64>,
    /// Optional fault timeline: faulted nodes transmit and receive at
    /// zero/degraded rate for the fault window (`None` = no faults).
    faults: Option<FaultSchedule>,
}

impl<S: Shaper> Default for Fabric<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Shaper> Fabric<S> {
    /// An empty fabric at t=0.
    pub fn new() -> Self {
        Fabric {
            nodes: Vec::new(),
            flows: BTreeMap::new(),
            next_flow: 0,
            now_s: 0.0,
            core_capacity_bps: None,
            faults: None,
        }
    }

    /// Attach a fault schedule: from now on, [`Fabric::step`] scales
    /// each node's egress and ingress by the schedule's rate factor at
    /// the current simulated time (0.0 while a VM stall is active).
    /// Shapers of faulted nodes still advance — token buckets keep
    /// refilling while the VM is paused, exactly as on a real cloud.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = Some(schedule);
    }

    /// Detach the fault schedule (all nodes healthy again).
    pub fn clear_fault_schedule(&mut self) {
        self.faults = None;
    }

    /// The attached fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Fault rate factor of node `n` at the current simulated time
    /// (1.0 when healthy or when no schedule is attached).
    pub fn node_fault_factor(&self, n: NodeId) -> f64 {
        match &self.faults {
            Some(s) => s.factor_at(n, self.now_s),
            None => 1.0,
        }
    }

    /// Whether node `n` is inside a VM-stall episode right now.
    pub fn node_stalled(&self, n: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|s| s.stalled_at(n, self.now_s))
    }

    /// Constrain the fabric core: the sum of all flow rates may not
    /// exceed `bps` (oversubscription). Pass `f64::INFINITY`-like
    /// removal via [`Fabric::clear_core_capacity`].
    pub fn set_core_capacity(&mut self, bps: f64) {
        assert!(bps > 0.0, "core capacity must be positive");
        self.core_capacity_bps = Some(bps);
    }

    /// Remove the core constraint (full bisection bandwidth).
    pub fn clear_core_capacity(&mut self) {
        self.core_capacity_bps = None;
    }

    /// Add a node with the given egress shaper and ingress capacity.
    pub fn add_node(&mut self, shaper: S, ingress_cap_bps: f64) -> NodeId {
        self.nodes.push(Node {
            shaper,
            ingress_cap_bps,
            last_tx_bits: 0.0,
            total_tx_bits: 0.0,
        });
        self.nodes.len() - 1
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start a transfer; completion is reported by [`Fabric::step`].
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            spec.src < self.nodes.len() && spec.dst < self.nodes.len(),
            "flow endpoints must be fabric nodes"
        );
        assert!(spec.src != spec.dst, "loopback flows bypass the network");
        assert!(spec.bits >= 0.0, "flow size must be non-negative");
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                spec,
                remaining_bits: spec.bits,
                last_rate_bps: 0.0,
            },
        );
        id
    }

    /// Remaining bits of a flow (`None` once completed/unknown).
    pub fn flow_remaining_bits(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bits)
    }

    /// Rate granted to a flow in the last step, bits/s.
    pub fn flow_last_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.last_rate_bps)
    }

    /// Egress bits node `n` sent in the last step.
    pub fn node_last_tx_bits(&self, n: NodeId) -> f64 {
        self.nodes[n].last_tx_bits
    }

    /// Cumulative egress bits of node `n`.
    pub fn node_total_tx_bits(&self, n: NodeId) -> f64 {
        self.nodes[n].total_tx_bits
    }

    /// Access a node's shaper (e.g. to read a token-bucket budget).
    pub fn node_shaper(&self, n: NodeId) -> &S {
        &self.nodes[n].shaper
    }

    /// Mutable access to a node's shaper (e.g. to preset budgets).
    pub fn node_shaper_mut(&mut self, n: NodeId) -> &mut S {
        &mut self.nodes[n].shaper
    }

    /// Max-min fair rates for the current flow set, honoring per-node
    /// egress hints, per-node ingress caps, and per-flow caps.
    fn compute_rates(&self) -> Vec<(FlowId, f64)> {
        let n_nodes = self.nodes.len();
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut rate = vec![0.0f64; ids.len()];
        let mut frozen = vec![false; ids.len()];

        // Residual capacity per resource: egress, ingress, and the
        // (optional) shared core. Fault episodes scale a node's link in
        // both directions: a stalled VM neither sends nor receives, a
        // degraded link is degraded for traffic either way.
        let mut egress: Vec<f64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(v, n)| {
                let factor = match &self.faults {
                    Some(s) => s.factor_at(v, self.now_s),
                    None => 1.0,
                };
                n.shaper.rate_hint(self.now_s).max(0.0) * factor
            })
            .collect();
        let mut ingress: Vec<f64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(v, n)| {
                let factor = match &self.faults {
                    Some(s) => s.factor_at(v, self.now_s),
                    None => 1.0,
                };
                n.ingress_cap_bps * factor
            })
            .collect();
        let mut core = self.core_capacity_bps;

        loop {
            // Count unfrozen flows per resource.
            let mut eg_count = vec![0usize; n_nodes];
            let mut in_count = vec![0usize; n_nodes];
            let mut unfrozen = 0usize;
            for (k, id) in ids.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                unfrozen += 1;
                let s = self.flows[id].spec;
                eg_count[s.src] += 1;
                in_count[s.dst] += 1;
            }
            if unfrozen == 0 {
                break;
            }

            // Smallest fair share over all constraining resources.
            let mut share = f64::INFINITY;
            for v in 0..n_nodes {
                if eg_count[v] > 0 {
                    share = share.min(egress[v] / eg_count[v] as f64);
                }
                if in_count[v] > 0 {
                    share = share.min(ingress[v] / in_count[v] as f64);
                }
            }
            if let Some(c) = core {
                share = share.min(c / unfrozen as f64);
            }
            // Per-flow caps can be tighter than any shared resource.
            for (k, id) in ids.iter().enumerate() {
                if !frozen[k] {
                    share = share.min(self.flows[id].spec.max_rate_bps);
                }
            }
            if !share.is_finite() {
                // No finite constraint at all: unbounded fabric.
                for (k, _) in ids.iter().enumerate() {
                    if !frozen[k] {
                        frozen[k] = true;
                        rate[k] = f64::INFINITY;
                    }
                }
                break;
            }
            let share = share.max(0.0);

            // Freeze every flow limited at this share: flows crossing a
            // bottleneck resource, or capped at exactly the share.
            let eps = share * 1e-9 + 1e-9;
            let core_binding = core
                .map(|c| c / unfrozen as f64 <= share + eps)
                .unwrap_or(false);
            let mut froze_any = false;
            for (k, id) in ids.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                let s = self.flows[id].spec;
                let src_share = egress[s.src] / eg_count[s.src] as f64;
                let dst_share = ingress[s.dst] / in_count[s.dst] as f64;
                let capped = s.max_rate_bps <= share + eps;
                if core_binding || src_share <= share + eps || dst_share <= share + eps || capped
                {
                    frozen[k] = true;
                    rate[k] = share;
                    egress[s.src] = (egress[s.src] - share).max(0.0);
                    ingress[s.dst] = (ingress[s.dst] - share).max(0.0);
                    if let Some(c) = core.as_mut() {
                        *c = (*c - share).max(0.0);
                    }
                    froze_any = true;
                }
            }
            debug_assert!(froze_any, "water-filling failed to make progress");
            if !froze_any {
                break;
            }
        }

        ids.into_iter().zip(rate).collect()
    }

    /// Advance the fabric by `dt` seconds. Returns the flows that
    /// completed during the step, in id order.
    pub fn step(&mut self, dt: f64) -> Vec<FlowId> {
        assert!(dt > 0.0, "step must be positive");
        let rates = self.compute_rates();

        // Aggregate per-node egress demand.
        let mut node_demand = vec![0.0f64; self.nodes.len()];
        for &(id, r) in &rates {
            let f = &self.flows[&id];
            let want = (r * dt).min(f.remaining_bits);
            node_demand[f.spec.src] += want;
        }

        // Let shapers admit the demand; compute per-node scaling.
        let mut node_scale = vec![1.0f64; self.nodes.len()];
        for (v, node) in self.nodes.iter_mut().enumerate() {
            let demand = node_demand[v];
            let granted = node.shaper.transmit(self.now_s, dt, demand);
            node.last_tx_bits = granted;
            node.total_tx_bits += granted;
            node_scale[v] = if demand > 0.0 { granted / demand } else { 1.0 };
        }

        // Deliver bits and collect completions.
        let mut completed = Vec::new();
        for (id, r) in rates {
            // detlint:allow(D5) -- invariant: `rates` was computed from `self.flows` this step
            let f = self.flows.get_mut(&id).expect("flow vanished");
            let want = (r * dt).min(f.remaining_bits);
            let delivered = want * node_scale[f.spec.src];
            f.remaining_bits -= delivered;
            f.last_rate_bps = delivered / dt;
            if f.remaining_bits <= 1e-6 {
                completed.push(id);
            }
        }
        for id in &completed {
            self.flows.remove(id);
        }

        self.now_s += dt;
        completed
    }

    /// Advance with **no** flows for `duration` (resting: token refill).
    pub fn rest(&mut self, duration: f64, dt: f64) {
        assert!(self.flows.is_empty(), "rest() with active flows");
        let steps = (duration / dt).round().max(0.0) as u64;
        for _ in 0..steps {
            for node in &mut self.nodes {
                node.shaper.transmit(self.now_s, dt, 0.0);
                node.last_tx_bits = 0.0;
            }
            self.now_s += dt;
        }
    }

    /// Reset every node's shaper and the clock (fresh VMs).
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.shaper.reset();
            node.last_tx_bits = 0.0;
            node.total_tx_bits = 0.0;
        }
        self.flows.clear();
        self.now_s = 0.0;
    }
}

/// Multi-tenant cross traffic: a Poisson process of neighbour flows.
///
/// The paper's HPCCloud variability comes from tenants sharing links
/// without QoS; [`crate::shaper::NoiseShaper`] models that at a single
/// endpoint, while `CrossTraffic` models it *inside a fabric* — random
/// neighbour flows between random node pairs contend with the
/// workload's own shuffles through the same max-min allocation, so
/// contention hits exactly the links that happen to be busy.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    /// Mean neighbour-flow arrivals per second.
    pub arrivals_per_s: f64,
    /// Mean flow size in bits (exponential).
    pub mean_flow_bits: f64,
    /// Per-flow rate cap in bits/s (neighbours rarely get full links).
    pub flow_rate_cap_bps: f64,
    rng: SimRng,
}

impl CrossTraffic {
    /// Create a cross-traffic source.
    pub fn new(arrivals_per_s: f64, mean_flow_bits: f64, flow_rate_cap_bps: f64, seed: u64) -> Self {
        assert!(
            arrivals_per_s >= 0.0 && mean_flow_bits > 0.0 && flow_rate_cap_bps > 0.0,
            "cross-traffic parameters must be positive"
        );
        CrossTraffic {
            arrivals_per_s,
            mean_flow_bits,
            flow_rate_cap_bps,
            rng: SimRng::new(seed),
        }
    }

    /// Inject arrivals for one step of length `dt` into the fabric.
    /// Call once per [`Fabric::step`]; returns the flows started.
    pub fn inject<S: Shaper>(&mut self, fabric: &mut Fabric<S>, dt: f64) -> Vec<FlowId> {
        let n = fabric.node_count();
        if n < 2 || self.arrivals_per_s <= 0.0 {
            return Vec::new();
        }
        let arrivals = self.rng.poisson(self.arrivals_per_s * dt);
        let mut started = Vec::new();
        for _ in 0..arrivals {
            let src = self.rng.index(n);
            let dst = (src + 1 + self.rng.index(n - 1)) % n;
            let bits = self.rng.exponential(1.0 / self.mean_flow_bits);
            let mut spec = FlowSpec::new(src, dst, bits);
            spec.max_rate_bps = self.flow_rate_cap_bps;
            started.push(fabric.start_flow(spec));
        }
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shaper::{StaticShaper, TokenBucket};
    use crate::units::{gbit, gbps};

    fn static_fabric(n: usize, rate: f64) -> Fabric<StaticShaper> {
        let mut f = Fabric::new();
        for _ in 0..n {
            f.add_node(StaticShaper::new(rate), rate);
        }
        f
    }

    #[test]
    fn stalled_node_transmits_nothing_then_recovers() {
        use crate::faults::{FaultEpisode, FaultKind, FaultSchedule};
        let mut f = static_fabric(2, gbps(10.0));
        f.set_fault_schedule(FaultSchedule::from_episodes(
            2,
            100.0,
            [FaultEpisode {
                node: 0,
                start_s: 1.0,
                end_s: 3.0,
                kind: FaultKind::VmStall,
                rate_factor: 0.0,
            }],
        ));
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 10.0));
        // t=0: healthy, full rate.
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(10.0)).abs() < 1.0);
        // t=1 and t=2: stalled, nothing moves.
        f.step(1.0);
        assert_eq!(f.flow_last_rate(id).unwrap(), 0.0);
        assert!(f.node_stalled(0));
        assert_eq!(f.node_fault_factor(0), 0.0);
        f.step(1.0);
        assert_eq!(f.flow_last_rate(id).unwrap(), 0.0);
        // t=3: recovered.
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(10.0)).abs() < 1.0);
        assert!(!f.node_stalled(0));
    }

    #[test]
    fn degraded_node_transmits_at_reduced_rate() {
        use crate::faults::{FaultEpisode, FaultKind, FaultSchedule};
        let mut f = static_fabric(2, gbps(10.0));
        f.set_fault_schedule(FaultSchedule::from_episodes(
            2,
            100.0,
            [FaultEpisode {
                node: 1,
                start_s: 0.0,
                end_s: 50.0,
                kind: FaultKind::LinkDegrade,
                rate_factor: 0.25,
            }],
        ));
        // Flow *into* the degraded node: ingress is scaled too.
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 100.0));
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(2.5)).abs() < 1.0);
    }

    #[test]
    fn empty_fault_schedule_matches_no_schedule() {
        use crate::faults::{FaultConfig, FaultSchedule};
        let run = |with_sched: bool| {
            let mut f = static_fabric(3, gbps(10.0));
            if with_sched {
                f.set_fault_schedule(FaultSchedule::generate(
                    &FaultConfig::NONE,
                    3,
                    1000.0,
                    77,
                ));
            }
            f.start_flow(FlowSpec::new(0, 1, gbit(40.0)));
            f.start_flow(FlowSpec::new(2, 1, gbit(15.0)));
            let mut history = Vec::new();
            for _ in 0..20 {
                f.step(0.5);
                history.push((f.node_last_tx_bits(0), f.node_last_tx_bits(2)));
            }
            history
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let mut f = static_fabric(2, gbps(10.0));
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 5.0));
        let mut done = Vec::new();
        for _ in 0..60 {
            done.extend(f.step(0.1));
        }
        assert_eq!(done, vec![id]);
        // 50 Gbit at 10 Gbps = 5 s; completed within 5.0..5.1 s.
        assert!((f.now() - 6.0).abs() < 1e-9);
        assert!((f.node_total_tx_bits(0) - gbps(10.0) * 5.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_ingress_fairly() {
        // Nodes 0 and 1 both send to node 2: ingress at 2 is the
        // bottleneck; each should get half.
        let mut f = static_fabric(3, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(100.0)));
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(100.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn egress_sharing_and_unconstrained_flow() {
        // Node 0 sends two flows (shares its 10 Gbps egress), node 1
        // sends one flow to a different destination at full rate.
        let mut f = static_fabric(4, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let b = f.start_flow(FlowSpec::new(0, 3, gbit(1000.0)));
        let c = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        // Max-min: a shares egress(0) with b → 5; c gets ingress(2)
        // leftover = min(egress(1)=10, 10-5=5) = 5.
        assert!((f.flow_last_rate(a).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(c).unwrap() - gbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn per_flow_cap_releases_bandwidth_to_others() {
        let mut f = static_fabric(3, gbps(10.0));
        let mut spec = FlowSpec::new(0, 2, gbit(1000.0));
        spec.max_rate_bps = gbps(1.0);
        let a = f.start_flow(spec);
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(1.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(9.0)).abs() < 1.0);
    }

    #[test]
    fn token_bucket_node_throttles_only_its_flows() {
        let mut f: Fabric<TokenBucket> = Fabric::new();
        // Node 0: nearly-empty bucket; node 1: full bucket; node 2: sink.
        let empty = TokenBucket::new(0.0, gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        let full = TokenBucket::new(gbit(5000.0), gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        let sink = TokenBucket::sigma_rho(gbit(1e6), gbps(20.0), gbps(20.0));
        f.add_node(empty, gbps(20.0));
        f.add_node(full, gbps(20.0));
        f.add_node(sink, gbps(20.0));
        let slow = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let fast = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        let r_slow = f.flow_last_rate(slow).unwrap();
        let r_fast = f.flow_last_rate(fast).unwrap();
        assert!(r_slow < gbps(1.3), "slow {r_slow}");
        assert!(r_fast > gbps(9.0), "fast {r_fast}");
    }

    #[test]
    fn rest_refills_buckets() {
        let mut f: Fabric<TokenBucket> = Fabric::new();
        let tb = TokenBucket::new(0.0, gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        f.add_node(tb, gbps(10.0));
        f.rest(120.0, 0.1);
        assert!((f.node_shaper(0).budget_bits() - gbit(120.0)).abs() < gbit(0.01));
        assert!((f.now() - 120.0).abs() < 1e-6);
    }

    #[test]
    fn reset_restores_everything() {
        let mut f = static_fabric(2, gbps(10.0));
        f.start_flow(FlowSpec::new(0, 1, gbit(1.0)));
        f.step(0.1);
        f.reset();
        assert_eq!(f.now(), 0.0);
        assert_eq!(f.active_flows(), 0);
        assert_eq!(f.node_total_tx_bits(0), 0.0);
    }

    #[test]
    fn completion_order_is_deterministic() {
        let mut f = static_fabric(3, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1.0)));
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(1.0)));
        // Both complete in the same step; ids reported in order.
        let done = f.step(1.0);
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback_flows() {
        let mut f = static_fabric(2, gbps(10.0));
        f.start_flow(FlowSpec::new(1, 1, 1.0));
    }

    #[test]
    fn oversubscribed_core_caps_aggregate_rate() {
        // 4 senders to 4 distinct receivers: node caps allow 40 Gbps
        // aggregate, but a 10 Gbps core forces 2.5 Gbps each.
        let mut f = static_fabric(8, gbps(10.0));
        f.set_core_capacity(gbps(10.0));
        let ids: Vec<_> = (0..4)
            .map(|i| f.start_flow(FlowSpec::new(i, i + 4, gbit(1000.0))))
            .collect();
        f.step(0.1);
        for id in &ids {
            assert!((f.flow_last_rate(*id).unwrap() - gbps(2.5)).abs() < 1.0);
        }
        // Removing the constraint restores full bisection bandwidth.
        f.clear_core_capacity();
        f.step(0.1);
        for id in &ids {
            assert!((f.flow_last_rate(*id).unwrap() - gbps(10.0)).abs() < 1.0);
        }
    }

    #[test]
    fn core_interacts_with_per_node_caps() {
        // One sender capped at 1 Gbps by its own NIC; others share the
        // remaining core fairly.
        let mut f: Fabric<StaticShaper> = Fabric::new();
        f.add_node(StaticShaper::new(gbps(1.0)), gbps(10.0));
        for _ in 0..3 {
            f.add_node(StaticShaper::new(gbps(10.0)), gbps(10.0));
        }
        f.set_core_capacity(gbps(7.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let b = f.start_flow(FlowSpec::new(1, 3, gbit(1000.0)));
        f.step(0.1);
        // a limited by its 1 Gbps NIC; b gets the core's leftover 6.
        assert!((f.flow_last_rate(a).unwrap() - gbps(1.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(6.0)).abs() < 1.0);
    }

    #[test]
    fn cross_traffic_injects_poisson_flows() {
        let mut f = static_fabric(6, gbps(10.0));
        let mut ct = CrossTraffic::new(5.0, gbit(2.0), gbps(2.0), 7);
        let mut started = 0usize;
        for _ in 0..1000 {
            started += ct.inject(&mut f, 0.1).len();
            f.step(0.1);
        }
        // ~5/s over 100 s → ~500 arrivals, Poisson spread.
        assert!(started > 350 && started < 650, "started {started}");
    }

    #[test]
    fn cross_traffic_steals_bandwidth_from_a_foreground_flow() {
        let transfer_time = |with_noise: bool| {
            // Offered noise load (2/s × 5 Gbit = 10 Gbps) stays below
            // the fabric's capacity so the flow population is stable.
            let mut f = static_fabric(4, gbps(10.0));
            let mut ct = CrossTraffic::new(2.0, gbit(5.0), gbps(5.0), 3);
            let id = f.start_flow(FlowSpec::new(0, 1, gbit(400.0)));
            let mut t = 0.0;
            loop {
                if with_noise {
                    ct.inject(&mut f, 0.1);
                }
                let done = f.step(0.1);
                t += 0.1;
                if done.contains(&id) {
                    return t;
                }
                assert!(t < 10_000.0, "foreground flow starved");
            }
        };
        let clean = transfer_time(false);
        let noisy = transfer_time(true);
        assert!(noisy > 1.1 * clean, "clean {clean} noisy {noisy}");
    }

    #[test]
    fn cross_traffic_is_deterministic() {
        let run = || {
            let mut f = static_fabric(4, gbps(10.0));
            let mut ct = CrossTraffic::new(3.0, gbit(1.0), gbps(1.0), 11);
            let mut ids = Vec::new();
            for _ in 0..200 {
                ids.extend(ct.inject(&mut f, 0.1));
                f.step(0.1);
            }
            ids.len()
        };
        assert_eq!(run(), run());
    }
}
