//! Multi-node fluid fabric with max-min fair bandwidth sharing.
//!
//! The `bigdata` crate runs simulated Spark clusters on this fabric:
//! every node owns an egress [`Shaper`] (e.g. its VM's token bucket) and
//! an ingress capacity; shuffle transfers become [`FlowSpec`]s. Each
//! fluid step computes the **max-min fair** allocation (progressive
//! filling / water-filling) subject to per-node egress and ingress caps
//! and per-flow rate limits, then lets each node's shaper admit the
//! allocated egress volume — so token-bucket depletion on *one* node
//! slows exactly the flows that cross it, which is how the paper's
//! stragglers arise (Figure 18).
//!
//! ## The stepping engines
//!
//! Long campaigns (Figure 19's 600 s depletion sequences, multi-day
//! fleet sweeps) spend nearly all their time in [`Fabric::step`], so the
//! fabric keeps **three** engines with bit-identical observable
//! behavior, selected by [`StepPath`]:
//!
//! * the **reference path** — the original loop that re-runs
//!   water-filling from scratch every step, selected with
//!   [`Fabric::force_reference_path`] or by setting the
//!   `FABRIC_SLOW_PATH` environment variable;
//! * the **fast path** (PR 5) — hoists every per-step buffer into
//!   per-fabric scratch storage (zero steady-state heap allocations),
//!   maintains per-node active-flow counts incrementally instead of
//!   rebuilding them every water-filling round, and caches the rate
//!   allocation keyed by its exact inputs: the flow-set epoch, each
//!   node's `rate_hint` × fault factor, each node's effective ingress
//!   cap, and the core capacity. Water-filling is a pure function of
//!   that signature (it never reads `remaining_bits`), so a bitwise
//!   unchanged signature means the previous allocation can be reused
//!   verbatim. Token-bucket hints are piecewise-constant, which
//!   collapses long full-speed and depleted phases to O(nodes) per tick.
//!   Selected with `FABRIC_EVENT_PATH=0` (or [`Fabric::force_path`]);
//! * the **event-driven path** (default) — generalizes the signature
//!   cache from "check every step" to "prove a horizon": batched
//!   callers go through [`Fabric::advance`], which min-reduces a
//!   [`NextEvent`] over per-node state (closed-form
//!   [`Shaper::hint_stable_steps`] crossings, the fault schedule's next
//!   transition, the flow-completion epoch, the caller's budget) and
//!   runs the intervening steps in a struct-of-arrays kernel that skips
//!   the per-step signature gathers and flow-map walks entirely.
//!   Idle stretches batch through [`Shaper::rest`]. The kernel executes
//!   the *identical* per-step floating-point recurrences (demand,
//!   transmit, scale, deliver, clock) on mirrored state, so it is
//!   bit-identical by construction — events only bound how long the
//!   pure *reads* may be skipped, they never replace arithmetic.
//!
//! The equivalence contract is pinned by `tests/prop_fabric_fast.rs`
//! (fast vs reference) and `tests/prop_event_driven.rs` (event-jumped
//! vs reference, including adversarial event alignments), and
//! documented in DESIGN.md §9–10.

use crate::faults::FaultSchedule;
use crate::rng::SimRng;
use crate::shaper::Shaper;

/// Index of a node in the fabric.
pub type NodeId = usize;

/// Which stepping engine the fabric runs (see the module docs). All
/// three are bit-identical in every observable; they differ only in
/// wall-clock cost, which is what `benches/supp_fabric_speedup` and
/// `scripts/verify.sh` measure and cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPath {
    /// Event-driven engine (default): [`Fabric::advance`] jumps between
    /// provable events instead of re-validating the rate cache per step.
    Event,
    /// The PR-5 scratch-buffer fast path: per-step signature checks,
    /// zero steady-state allocations. `FABRIC_EVENT_PATH=0`.
    Fast,
    /// The original allocating loops, kept verbatim as the equivalence
    /// baseline. `FABRIC_SLOW_PATH=1` or [`Fabric::force_reference_path`].
    Reference,
}

/// The closed-form next-event bound for one kernel window: the number
/// of steps the event engine may take before any cached input *could*
/// change, and which source bound it. Built by min-reducing per-node
/// shaper crossings, the fault schedule's next transition, per-flow
/// completion horizons, and the caller's step budget. The bounds are
/// conservative (guard slack absorbs floating-point rounding), so the
/// kernel still detects actual completions per step exactly like the
/// per-step paths do — the horizon only proves what may be *skipped*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextEvent {
    /// Steps until the event horizon (0 = the window cannot open).
    pub steps: u64,
    /// What bounded the horizon.
    pub cause: EventCause,
}

/// What bounded an event window (see [`NextEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventCause {
    /// The caller's `max_steps` budget.
    Budget,
    /// A node's [`Shaper::hint_stable_steps`] crossing bound.
    HintCrossing(NodeId),
    /// The fault schedule's next episode edge.
    FaultTransition,
    /// A flow is near enough to completion that its per-step demand
    /// `min(rate·dt, remaining)` could stop being the constant
    /// `rate·dt`.
    Completion(FlowId),
}

/// Closed-form completion horizon for one flow: a number of steps over
/// which `min(rate*dt, remaining)` provably keeps the bit pattern of
/// the per-step demand `want` it has right now. Per-step delivery is
/// `want * scale` with `scale = granted/demand <= 1.0` bitwise, so each
/// step removes at most `want` bits and `remaining` stays strictly
/// above the next step's demand for at least
/// `(remaining/want) * (1 - 1e-6) - 2` steps; the relative `1e-6` and
/// the two absolute guard steps absorb the rounding of both the bound
/// and the delivery recurrence. A flow already below its full demand
/// (`remaining < rate*dt`, i.e. `want == remaining`) collapses to 0. A
/// zero-demand flow makes no progress and never bounds the horizon.
fn flow_completion_horizon(remaining: f64, want: f64) -> u64 {
    if want > 0.0 {
        (((remaining / want) * (1.0 - 1e-6)).floor() as u64).saturating_sub(2)
    } else {
        u64::MAX
    }
}

/// Opaque identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// A requested transfer.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bits.
    pub bits: f64,
    /// Application-level rate cap in bits/s (`f64::INFINITY` if none).
    pub max_rate_bps: f64,
}

impl FlowSpec {
    /// An uncapped transfer of `bits` from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId, bits: f64) -> Self {
        FlowSpec {
            src,
            dst,
            bits,
            max_rate_bps: f64::INFINITY,
        }
    }
}

/// Longest route the fabric stores inline. A fat-tree host-to-host path
/// crosses at most six directed links (host→ToR→fabric→spine→fabric→
/// ToR→host); eight leaves headroom for deeper zoo members without ever
/// putting a route on the heap.
pub const MAX_ROUTE_LINKS: usize = 8;

/// The directed links a routed flow crosses, in hop order, stored
/// inline so routed flow churn stays allocation-free (see
/// `tests/alloc_free.rs`). Link indexes refer to the capacity slots
/// installed by [`Fabric::set_link_caps`]; the empty route is a flat
/// flow constrained only by endpoints and the optional core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRoute {
    links: [u32; MAX_ROUTE_LINKS],
    len: u8,
}

impl Default for LinkRoute {
    fn default() -> Self {
        LinkRoute::EMPTY
    }
}

impl LinkRoute {
    /// The flat route: no in-network links crossed.
    pub const EMPTY: LinkRoute = LinkRoute {
        links: [0; MAX_ROUTE_LINKS],
        len: 0,
    };

    /// Build a route from directed link slots in hop order. Panics if
    /// the path is longer than [`MAX_ROUTE_LINKS`].
    pub fn new(links: &[u32]) -> Self {
        assert!(
            links.len() <= MAX_ROUTE_LINKS,
            "route longer than MAX_ROUTE_LINKS"
        );
        let mut r = LinkRoute::EMPTY;
        r.links[..links.len()].copy_from_slice(links);
        r.len = links.len() as u8;
        r
    }

    /// The crossed link slots, in hop order.
    pub fn links(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }

    /// Whether this is the flat (linkless) route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    remaining_bits: f64,
    last_rate_bps: f64,
    route: LinkRoute,
}

/// Ordered flow map backed by a sorted `Vec`. Flow ids are handed out
/// by a monotone counter, so inserts are almost always appends and the
/// vector stays sorted by id — iteration order (and therefore every
/// floating-point accumulation order downstream) is identical to the
/// `BTreeMap` this replaces, at a fraction of the per-insert and
/// per-walk cost on the hot churn path.
#[derive(Debug, Default)]
struct FlowMap(Vec<(FlowId, ActiveFlow)>);

impl FlowMap {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn clear(&mut self) {
        self.0.clear();
    }

    fn insert(&mut self, id: FlowId, f: ActiveFlow) {
        match self.0.last() {
            Some((last, _)) if *last >= id => {
                // Out-of-order insert (never happens with the monotone
                // counter, but keep the map honest).
                match self.0.binary_search_by_key(&id, |kv| kv.0) {
                    Ok(i) => self.0[i] = (id, f),
                    Err(i) => self.0.insert(i, (id, f)),
                }
            }
            _ => self.0.push((id, f)),
        }
    }

    fn index_of(&self, id: &FlowId) -> Option<usize> {
        self.0.binary_search_by_key(id, |kv| kv.0).ok()
    }

    fn get(&self, id: &FlowId) -> Option<&ActiveFlow> {
        self.index_of(id).map(|i| &self.0[i].1)
    }

    fn get_mut(&mut self, id: &FlowId) -> Option<&mut ActiveFlow> {
        match self.0.binary_search_by_key(id, |kv| kv.0) {
            Ok(i) => Some(&mut self.0[i].1),
            Err(_) => None,
        }
    }

    fn remove(&mut self, id: &FlowId) -> Option<ActiveFlow> {
        self.index_of(id).map(|i| self.0.remove(i).1)
    }

    fn keys(&self) -> impl Iterator<Item = &FlowId> + '_ {
        self.0.iter().map(|kv| &kv.0)
    }

    fn values(&self) -> impl Iterator<Item = &ActiveFlow> + '_ {
        self.0.iter().map(|kv| &kv.1)
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut ActiveFlow> + '_ {
        self.0.iter_mut().map(|kv| &mut kv.1)
    }

    fn iter(&self) -> impl Iterator<Item = (&FlowId, &ActiveFlow)> + '_ {
        self.0.iter().map(|kv| (&kv.0, &kv.1))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (&FlowId, &mut ActiveFlow)> + '_ {
        self.0.iter_mut().map(|kv| (&kv.0, &mut kv.1))
    }
}

impl std::ops::Index<&FlowId> for FlowMap {
    type Output = ActiveFlow;

    fn index(&self, id: &FlowId) -> &ActiveFlow {
        // detlint:allow(D5, D11) -- invariant: callers only index ids collected from this map in the same step; a miss is engine corruption where aborting the shard beats silently continuing
        self.get(id).expect("unknown flow id")
    }
}

struct Node<S> {
    shaper: S,
    ingress_cap_bps: f64,
    /// Bits sent during the last step (for per-node utilization traces).
    last_tx_bits: f64,
    /// Cumulative bits sent.
    total_tx_bits: f64,
}

/// Counters for the stepping fast path: how often water-filling ran,
/// how often the cached allocation was reused, and how many `Vec`
/// allocations the reference path would have performed. Read them with
/// [`Fabric::perf`]; they are instrumentation only and never feed back
/// into the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricPerf {
    /// Total [`Fabric::step`] calls (both paths).
    pub steps: u64,
    /// Steps whose input signature changed, forcing water-filling.
    pub rate_recomputes: u64,
    /// Steps that reused the cached allocation (signature bitwise equal).
    pub rate_cache_hits: u64,
    /// Steps taken with no flows at all (water-filling skipped outright).
    pub empty_steps: u64,
    /// Exact count of per-step `Vec` allocations performed by the
    /// reference path (the fast path's steady state performs none; see
    /// `tests/alloc_free.rs`). Incremented only while the reference
    /// path is forced, so a reference run reports how many allocations
    /// the fast path avoids.
    pub ref_vec_allocs: u64,
    /// Event windows opened by [`Fabric::advance`] (kernel runs of ≥1
    /// step, plus batched idle jumps).
    pub event_jumps: u64,
    /// Steps executed inside event windows (kernel steps + batched idle
    /// steps). Each also counts toward `steps`, and kernel steps count
    /// as `rate_cache_hits` (the window horizon *proves* the signature
    /// check would have hit).
    pub event_steps: u64,
    /// Water-filling runs that had to honor per-link capacities
    /// (installed topology, non-empty link set). Zero on a flat fabric.
    pub link_recomputes: u64,
    /// Link-constrained steps served from the cached allocation — the
    /// per-link capacity signature (and everything else) was bitwise
    /// unchanged. Event-kernel steps on a linked fabric count here too,
    /// for the same reason they count as `rate_cache_hits`.
    pub link_cache_hits: u64,
}

impl FabricPerf {
    /// Fraction of non-empty steps served from the rate cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let busy = self.rate_recomputes + self.rate_cache_hits;
        if busy == 0 {
            0.0
        } else {
            self.rate_cache_hits as f64 / busy as f64
        }
    }

    /// Fraction of link-constrained steps served from the cache (0.0
    /// when no topology was installed — a flat fabric has no link
    /// steps at all).
    pub fn link_cache_hit_rate(&self) -> f64 {
        let busy = self.link_recomputes + self.link_cache_hits;
        if busy == 0 {
            0.0
        } else {
            self.link_cache_hits as f64 / busy as f64
        }
    }

    /// Fold another fabric's counters into this one (campaign-level
    /// aggregation across repetitions or placements).
    pub fn merge(&mut self, other: &FabricPerf) {
        self.steps += other.steps;
        self.rate_recomputes += other.rate_recomputes;
        self.rate_cache_hits += other.rate_cache_hits;
        self.empty_steps += other.empty_steps;
        self.ref_vec_allocs += other.ref_vec_allocs;
        self.event_jumps += other.event_jumps;
        self.event_steps += other.event_steps;
        self.link_recomputes += other.link_recomputes;
        self.link_cache_hits += other.link_cache_hits;
    }
}

/// Scratch buffers for the allocation-free stepping fast path. Every
/// buffer is cleared and refilled in place, so in steady state (constant
/// flow set, constant node count) no buffer ever reallocates.
#[derive(Debug, Default)]
struct StepScratch {
    /// Flow ids in [`FlowMap`] key order (== iteration order); valid for
    /// `sig_epoch`.
    ids: Vec<FlowId>,
    /// Flow specs aligned with `ids` (avoids per-flow map lookups).
    specs: Vec<FlowSpec>,
    /// The cached max-min allocation, aligned with `ids`.
    rate: Vec<f64>,
    frozen: Vec<bool>,
    /// Residual egress/ingress capacity during water-filling; start as
    /// the gathered effective capacities.
    egress: Vec<f64>,
    ingress: Vec<f64>,
    /// Unfrozen-flow counts per node for the current round.
    eg_count: Vec<usize>,
    in_count: Vec<usize>,
    /// Flow indexes frozen in the current round; their count decrements
    /// are applied only after the round's freeze sweep, matching the
    /// reference path's rebuild-at-round-start reads.
    round_frozen: Vec<usize>,
    node_demand: Vec<f64>,
    node_scale: Vec<f64>,
    /// Per-flow `(rate*dt).min(remaining)` computed in the demand pass
    /// and reused verbatim in the deliver pass.
    want: Vec<f64>,
    /// Per-flow routes aligned with `ids` (rebuilt with the spec mirror
    /// on every flow-set epoch change).
    routes: Vec<LinkRoute>,
    /// Residual per-link capacity during water-filling.
    link_res: Vec<f64>,
    /// Unfrozen-flow counts per directed link for the current round.
    link_count: Vec<usize>,
    /// Flow-set epoch the cache was computed for.
    sig_epoch: u64,
    /// Core capacity bit pattern the cache was computed for.
    sig_core: Option<u64>,
    /// Per-link capacity bit patterns the cache was computed for — the
    /// per-node signature generalized to the topology's links.
    sig_links: Vec<u64>,
    /// Effective egress (hint × fault factor) bit patterns per node.
    sig_egress: Vec<u64>,
    /// Effective ingress (cap × fault factor) bit patterns per node.
    sig_ingress: Vec<u64>,
    /// Event-kernel struct-of-arrays mirrors of per-flow hot state,
    /// aligned with `ids`. The kernel touches exactly one f64 lane per
    /// flow per pass instead of walking the flow map; values are
    /// gathered at window entry and scattered back at window exit.
    /// Source-node index per flow (u32 lane: half the stride of the
    /// full `FlowSpec`).
    ev_src: Vec<u32>,
    /// Remaining bits per flow.
    ev_rem: Vec<f64>,
    /// Contiguous same-source runs `(start, end)` over `ev_src`, built
    /// at window entry when the flow order happens to be src-sorted
    /// (the engine starts shuffles src-major, so it usually is). The
    /// deliver pass then walks each run with its node's scale as a
    /// loop-constant scalar — branch-free, gather-free, and
    /// vectorizable — instead of indexing `node_scale` per flow.
    ev_runs: Vec<(u32, u32)>,
}

/// The fabric. Generic over the shaper type so callers that need to
/// inspect shaper internals (e.g. token-bucket budgets for Figure 15/18)
/// can use a concrete `Fabric<TokenBucket>`, while heterogeneous setups
/// use `Fabric<Box<dyn Shaper + Send>>`.
pub struct Fabric<S> {
    nodes: Vec<Node<S>>,
    flows: FlowMap,
    next_flow: u64,
    now_s: f64,
    /// Optional aggregate core capacity in bits/s shared by every flow
    /// (models an oversubscribed datacenter core; `None` = full
    /// bisection bandwidth, the default).
    core_capacity_bps: Option<f64>,
    /// Optional fault timeline: faulted nodes transmit and receive at
    /// zero/degraded rate for the fault window (`None` = no faults).
    faults: Option<FaultSchedule>,
    /// Bumped whenever the flow set changes (start/completion/reset);
    /// guards the spec-dependent half of the rate-cache signature.
    flow_epoch: u64,
    /// Per-node count of active flows sourced at this node, maintained
    /// incrementally — the round-0 water-filling counts.
    active_eg: Vec<usize>,
    /// Per-node count of active flows destined to this node.
    active_in: Vec<usize>,
    /// Directed per-link capacities in bits/s, installed by a topology
    /// wiring ([`Fabric::set_link_caps`]). Empty = flat fabric: every
    /// link loop below is vacuous and the arithmetic stream is exactly
    /// the pre-topology per-node + core model.
    link_caps: Vec<f64>,
    /// Per-link count of active flows crossing each directed link,
    /// maintained incrementally — the round-0 link counts.
    active_link: Vec<usize>,
    scratch: StepScratch,
    perf: FabricPerf,
    /// The active stepping engine (see [`StepPath`]).
    path: StepPath,
    /// The non-reference engine this fabric gates back to when
    /// [`Fabric::force_reference_path`] releases the reference loops
    /// (`Event` by default, `Fast` under `FABRIC_EVENT_PATH=0`).
    gated_path: StepPath,
}

impl<S: Shaper> Default for Fabric<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Shaper> Fabric<S> {
    /// An empty fabric at t=0. The event-driven engine is on by
    /// default; `FABRIC_EVENT_PATH=0` gates back to the PR-5 fast path,
    /// and `FABRIC_SLOW_PATH` (set to anything but `0`) forces the
    /// reference loops for A/B verification. The three are
    /// bit-identical in every observable.
    pub fn new() -> Self {
        let slow = std::env::var_os("FABRIC_SLOW_PATH").is_some_and(|v| v != "0");
        let no_event = std::env::var_os("FABRIC_EVENT_PATH").is_some_and(|v| v == "0");
        let gated = if no_event {
            StepPath::Fast
        } else {
            StepPath::Event
        };
        Fabric {
            nodes: Vec::new(),
            flows: FlowMap::default(),
            next_flow: 0,
            now_s: 0.0,
            core_capacity_bps: None,
            faults: None,
            // Start at 1 so a fresh scratch (sig_epoch 0) never matches
            // before its ids/specs mirror has been built.
            flow_epoch: 1,
            active_eg: Vec::new(),
            active_in: Vec::new(),
            link_caps: Vec::new(),
            active_link: Vec::new(),
            scratch: StepScratch::default(),
            perf: FabricPerf::default(),
            path: if slow { StepPath::Reference } else { gated },
            gated_path: gated,
        }
    }

    /// Force (or release) the original allocating stepping loops. The
    /// paths are bit-identical — this exists so tests, benches, and
    /// `verify.sh` can prove it. Releasing returns to the environment's
    /// non-reference engine (event-driven unless `FABRIC_EVENT_PATH=0`).
    pub fn force_reference_path(&mut self, on: bool) {
        self.path = if on { StepPath::Reference } else { self.gated_path };
    }

    /// Select a stepping engine explicitly (the three-way gate).
    pub fn force_path(&mut self, path: StepPath) {
        self.path = path;
        if path != StepPath::Reference {
            self.gated_path = path;
        }
    }

    /// The active stepping engine.
    pub fn step_path(&self) -> StepPath {
        self.path
    }

    /// Whether the reference (slow) stepping path is active.
    pub fn reference_path(&self) -> bool {
        self.path == StepPath::Reference
    }

    /// Fast-path instrumentation counters.
    pub fn perf(&self) -> FabricPerf {
        self.perf
    }

    /// Zero the instrumentation counters.
    pub fn reset_perf(&mut self) {
        self.perf = FabricPerf::default();
    }

    /// Attach a fault schedule: from now on, [`Fabric::step`] scales
    /// each node's egress and ingress by the schedule's rate factor at
    /// the current simulated time (0.0 while a VM stall is active).
    /// Shapers of faulted nodes still advance — token buckets keep
    /// refilling while the VM is paused, exactly as on a real cloud.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = Some(schedule);
    }

    /// Detach the fault schedule (all nodes healthy again).
    pub fn clear_fault_schedule(&mut self) {
        self.faults = None;
    }

    /// The attached fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Fault rate factor of node `n` at the current simulated time
    /// (1.0 when healthy or when no schedule is attached).
    pub fn node_fault_factor(&self, n: NodeId) -> f64 {
        match &self.faults {
            Some(s) => s.factor_at(n, self.now_s),
            None => 1.0,
        }
    }

    /// Whether node `n` is inside a VM-stall episode right now.
    pub fn node_stalled(&self, n: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|s| s.stalled_at(n, self.now_s))
    }

    /// Constrain the fabric core: the sum of all flow rates may not
    /// exceed `bps` (oversubscription). Pass `f64::INFINITY`-like
    /// removal via [`Fabric::clear_core_capacity`].
    pub fn set_core_capacity(&mut self, bps: f64) {
        assert!(bps > 0.0, "core capacity must be positive");
        self.core_capacity_bps = Some(bps);
    }

    /// Remove the core constraint (full bisection bandwidth).
    pub fn clear_core_capacity(&mut self) {
        self.core_capacity_bps = None;
    }

    /// Install directed per-link capacities (bits/s): slot `l` is one
    /// direction of one physical link of an external topology. Routed
    /// flows ([`Fabric::start_flow_routed`]) name the slots they cross;
    /// water-filling then honors each slot as a shared resource exactly
    /// like a node's egress. Installing an **empty** set is the flat
    /// fabric — no link logic runs at all, and every observable stays
    /// bit-identical to a fabric that never heard of links.
    ///
    /// Must be called on an idle fabric (no in-flight flows): live
    /// routes index the slots being replaced.
    pub fn set_link_caps(&mut self, caps: Vec<f64>) {
        assert!(
            self.flows.is_empty(),
            "install link capacities on an idle fabric"
        );
        for &c in &caps {
            assert!(c > 0.0, "link capacity must be positive");
        }
        self.active_link.clear();
        self.active_link.resize(caps.len(), 0);
        self.link_caps = caps;
        // The cached allocation (and its route mirror) is stale now.
        self.flow_epoch += 1;
    }

    /// Number of installed directed link-capacity slots (0 = flat).
    pub fn link_count(&self) -> usize {
        self.link_caps.len()
    }

    /// Capacity of directed link slot `l` in bits/s.
    pub fn link_cap_bps(&self, l: usize) -> f64 {
        self.link_caps[l]
    }

    /// The id the **next** started flow will receive. Topology wirings
    /// hash this into their ECMP path pick so path selection is a pure
    /// function of (seed, flow order) — replayable, placement-stable.
    pub fn next_flow_id_hint(&self) -> u64 {
        self.next_flow
    }

    /// Add a node with the given egress shaper and ingress capacity.
    pub fn add_node(&mut self, shaper: S, ingress_cap_bps: f64) -> NodeId {
        self.nodes.push(Node {
            shaper,
            ingress_cap_bps,
            last_tx_bits: 0.0,
            total_tx_bits: 0.0,
        });
        self.active_eg.push(0);
        self.active_in.push(0);
        self.nodes.len() - 1
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start a transfer; completion is reported by [`Fabric::step`].
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.start_flow_routed(spec, LinkRoute::EMPTY)
    }

    /// Start a transfer that crosses the given directed links (in hop
    /// order) of the installed topology; completion is reported by
    /// [`Fabric::step`]. An empty route is exactly [`Fabric::start_flow`].
    pub fn start_flow_routed(&mut self, spec: FlowSpec, route: LinkRoute) -> FlowId {
        assert!(
            spec.src < self.nodes.len() && spec.dst < self.nodes.len(),
            "flow endpoints must be fabric nodes"
        );
        assert!(spec.src != spec.dst, "loopback flows bypass the network");
        assert!(spec.bits >= 0.0, "flow size must be non-negative");
        for &l in route.links() {
            assert!(
                (l as usize) < self.link_caps.len(),
                "route names an uninstalled link slot"
            );
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                spec,
                remaining_bits: spec.bits,
                last_rate_bps: 0.0,
                route,
            },
        );
        self.active_eg[spec.src] += 1;
        self.active_in[spec.dst] += 1;
        for &l in route.links() {
            self.active_link[l as usize] += 1;
        }
        self.flow_epoch += 1;
        id
    }

    /// Remaining bits of a flow (`None` once completed/unknown).
    pub fn flow_remaining_bits(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bits)
    }

    /// Rate granted to a flow in the last step, bits/s.
    pub fn flow_last_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.last_rate_bps)
    }

    /// Egress bits node `n` sent in the last step.
    pub fn node_last_tx_bits(&self, n: NodeId) -> f64 {
        self.nodes[n].last_tx_bits
    }

    /// Cumulative egress bits of node `n`.
    pub fn node_total_tx_bits(&self, n: NodeId) -> f64 {
        self.nodes[n].total_tx_bits
    }

    /// Access a node's shaper (e.g. to read a token-bucket budget).
    pub fn node_shaper(&self, n: NodeId) -> &S {
        &self.nodes[n].shaper
    }

    /// Mutable access to a node's shaper (e.g. to preset budgets).
    pub fn node_shaper_mut(&mut self, n: NodeId) -> &mut S {
        &mut self.nodes[n].shaper
    }

    /// Max-min fair rates for the current flow set, honoring per-node
    /// egress hints, per-node ingress caps, and per-flow caps.
    ///
    /// This is the **reference** implementation: fresh buffers every
    /// call, counts rebuilt every water-filling round. The fast path
    /// ([`Fabric::refresh_rates`]) must stay bit-identical to it. Also
    /// returns the number of water-filling rounds so the caller can
    /// account the per-round allocations.
    fn compute_rates_reference(&self) -> (Vec<(FlowId, f64)>, u64) {
        let mut rounds = 0u64;
        let n_nodes = self.nodes.len();
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut rate = vec![0.0f64; ids.len()];
        let mut frozen = vec![false; ids.len()];

        // Residual capacity per resource: egress, ingress, and the
        // (optional) shared core. Fault episodes scale a node's link in
        // both directions: a stalled VM neither sends nor receives, a
        // degraded link is degraded for traffic either way.
        let mut egress: Vec<f64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(v, n)| {
                let factor = match &self.faults {
                    Some(s) => s.factor_at(v, self.now_s),
                    None => 1.0,
                };
                n.shaper.rate_hint(self.now_s).max(0.0) * factor
            })
            .collect();
        let mut ingress: Vec<f64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(v, n)| {
                let factor = match &self.faults {
                    Some(s) => s.factor_at(v, self.now_s),
                    None => 1.0,
                };
                n.ingress_cap_bps * factor
            })
            .collect();
        let mut core = self.core_capacity_bps;
        // Per-link residuals mirror the per-node ones; an empty link set
        // (flat fabric) makes every link loop below vacuous.
        let n_links = self.link_caps.len();
        let mut link_res: Vec<f64> = self.link_caps.clone();

        loop {
            rounds += 1;
            // Count unfrozen flows per resource.
            let mut eg_count = vec![0usize; n_nodes];
            let mut in_count = vec![0usize; n_nodes];
            let mut link_count = vec![0usize; n_links];
            let mut unfrozen = 0usize;
            for (k, id) in ids.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                unfrozen += 1;
                let f = &self.flows[id];
                eg_count[f.spec.src] += 1;
                in_count[f.spec.dst] += 1;
                for &l in f.route.links() {
                    link_count[l as usize] += 1;
                }
            }
            if unfrozen == 0 {
                break;
            }

            // Smallest fair share over all constraining resources.
            let mut share = f64::INFINITY;
            for v in 0..n_nodes {
                if eg_count[v] > 0 {
                    share = share.min(egress[v] / eg_count[v] as f64);
                }
                if in_count[v] > 0 {
                    share = share.min(ingress[v] / in_count[v] as f64);
                }
            }
            for l in 0..n_links {
                if link_count[l] > 0 {
                    share = share.min(link_res[l] / link_count[l] as f64);
                }
            }
            if let Some(c) = core {
                share = share.min(c / unfrozen as f64);
            }
            // Per-flow caps can be tighter than any shared resource.
            for (k, id) in ids.iter().enumerate() {
                if !frozen[k] {
                    share = share.min(self.flows[id].spec.max_rate_bps);
                }
            }
            if !share.is_finite() {
                // No finite constraint at all: unbounded fabric.
                for (k, _) in ids.iter().enumerate() {
                    if !frozen[k] {
                        frozen[k] = true;
                        rate[k] = f64::INFINITY;
                    }
                }
                break;
            }
            let share = share.max(0.0);

            // Freeze every flow limited at this share: flows crossing a
            // bottleneck resource, or capped at exactly the share.
            let eps = share * 1e-9 + 1e-9;
            let core_binding = core
                .map(|c| c / unfrozen as f64 <= share + eps)
                .unwrap_or(false);
            let mut froze_any = false;
            for (k, id) in ids.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                let f = &self.flows[id];
                let s = f.spec;
                let src_share = egress[s.src] / eg_count[s.src] as f64;
                let dst_share = ingress[s.dst] / in_count[s.dst] as f64;
                let mut link_binding = false;
                for &l in f.route.links() {
                    if link_res[l as usize] / link_count[l as usize] as f64 <= share + eps {
                        link_binding = true;
                    }
                }
                let capped = s.max_rate_bps <= share + eps;
                if core_binding
                    || src_share <= share + eps
                    || dst_share <= share + eps
                    || link_binding
                    || capped
                {
                    frozen[k] = true;
                    rate[k] = share;
                    egress[s.src] = (egress[s.src] - share).max(0.0);
                    ingress[s.dst] = (ingress[s.dst] - share).max(0.0);
                    for &l in f.route.links() {
                        link_res[l as usize] = (link_res[l as usize] - share).max(0.0);
                    }
                    if let Some(c) = core.as_mut() {
                        *c = (*c - share).max(0.0);
                    }
                    froze_any = true;
                }
            }
            debug_assert!(froze_any, "water-filling failed to make progress");
            if !froze_any {
                break;
            }
        }

        (ids.into_iter().zip(rate).collect(), rounds)
    }

    /// Ensure `scratch.rate` holds the max-min allocation for the
    /// current inputs, re-running water-filling only when the input
    /// signature (flow-set epoch, per-node effective egress/ingress,
    /// core capacity) changed bitwise since the last step.
    ///
    /// Bit-identity with [`Fabric::compute_rates_reference`]: the
    /// gathered capacities and cached specs are the exact values the
    /// reference reads, the freeze sweep mutates residuals in the same
    /// order, and per-node counts — initialized from the incrementally
    /// maintained totals — are decremented only *after* each round's
    /// sweep, matching the reference's rebuild-at-round-start reads.
    fn refresh_rates(&mut self) {
        let n_nodes = self.nodes.len();
        let sc = &mut self.scratch;
        let mut dirty = false;

        // 1. Flow set: rebuild the id/spec/route mirror when the epoch
        // moved.
        if sc.sig_epoch != self.flow_epoch {
            sc.ids.clear();
            sc.specs.clear();
            sc.routes.clear();
            for (id, f) in self.flows.iter() {
                sc.ids.push(*id);
                sc.specs.push(f.spec);
                sc.routes.push(f.route);
            }
            sc.sig_epoch = self.flow_epoch;
            dirty = true;
        }

        // 2. Per-node effective capacities, compared bitwise against the
        // cached signature while being gathered into the working
        // residual buffers.
        if sc.sig_egress.len() != n_nodes {
            sc.sig_egress.clear();
            sc.sig_egress.resize(n_nodes, 0);
            sc.sig_ingress.clear();
            sc.sig_ingress.resize(n_nodes, 0);
            dirty = true;
        }
        sc.egress.clear();
        sc.ingress.clear();
        for (v, n) in self.nodes.iter().enumerate() {
            let factor = match &self.faults {
                Some(s) => s.factor_at(v, self.now_s),
                None => 1.0,
            };
            let eg = n.shaper.rate_hint(self.now_s).max(0.0) * factor;
            let ing = n.ingress_cap_bps * factor;
            if sc.sig_egress[v] != eg.to_bits() {
                sc.sig_egress[v] = eg.to_bits();
                dirty = true;
            }
            if sc.sig_ingress[v] != ing.to_bits() {
                sc.sig_ingress[v] = ing.to_bits();
                dirty = true;
            }
            sc.egress.push(eg);
            sc.ingress.push(ing);
        }
        let core_bits = self.core_capacity_bps.map(f64::to_bits);
        if sc.sig_core != core_bits {
            sc.sig_core = core_bits;
            dirty = true;
        }
        // Per-link capacity signature: the per-node check generalized
        // to the topology's directed link slots. Vacuous (zero work,
        // zero counter movement) on a flat fabric.
        let n_links = self.link_caps.len();
        if sc.sig_links.len() != n_links {
            sc.sig_links.clear();
            sc.sig_links.resize(n_links, 0);
            dirty = true;
        }
        for (l, cap) in self.link_caps.iter().enumerate() {
            if sc.sig_links[l] != cap.to_bits() {
                sc.sig_links[l] = cap.to_bits();
                dirty = true;
            }
        }

        if !dirty {
            self.perf.rate_cache_hits += 1;
            if n_links > 0 {
                self.perf.link_cache_hits += 1;
            }
            return;
        }
        self.perf.rate_recomputes += 1;
        if n_links > 0 {
            self.perf.link_recomputes += 1;
        }

        // 3. Water-filling into the scratch buffers.
        let k_flows = sc.ids.len();
        sc.rate.clear();
        sc.rate.resize(k_flows, 0.0);
        sc.frozen.clear();
        sc.frozen.resize(k_flows, false);
        sc.eg_count.clear();
        sc.eg_count.extend_from_slice(&self.active_eg);
        sc.in_count.clear();
        sc.in_count.extend_from_slice(&self.active_in);
        sc.link_count.clear();
        sc.link_count.extend_from_slice(&self.active_link);
        sc.link_res.clear();
        sc.link_res.extend_from_slice(&self.link_caps);
        let mut unfrozen = k_flows;
        let mut core = self.core_capacity_bps;

        loop {
            if unfrozen == 0 {
                break;
            }

            // Smallest fair share over all constraining resources.
            let mut share = f64::INFINITY;
            for v in 0..n_nodes {
                if sc.eg_count[v] > 0 {
                    share = share.min(sc.egress[v] / sc.eg_count[v] as f64);
                }
                if sc.in_count[v] > 0 {
                    share = share.min(sc.ingress[v] / sc.in_count[v] as f64);
                }
            }
            for l in 0..n_links {
                if sc.link_count[l] > 0 {
                    share = share.min(sc.link_res[l] / sc.link_count[l] as f64);
                }
            }
            if let Some(c) = core {
                share = share.min(c / unfrozen as f64);
            }
            // Per-flow caps can be tighter than any shared resource.
            for k in 0..k_flows {
                if !sc.frozen[k] {
                    share = share.min(sc.specs[k].max_rate_bps);
                }
            }
            if !share.is_finite() {
                // No finite constraint at all: unbounded fabric.
                for k in 0..k_flows {
                    if !sc.frozen[k] {
                        sc.frozen[k] = true;
                        sc.rate[k] = f64::INFINITY;
                    }
                }
                break;
            }
            let share = share.max(0.0);

            // Freeze every flow limited at this share: flows crossing a
            // bottleneck resource, or capped at exactly the share.
            let eps = share * 1e-9 + 1e-9;
            let core_binding = core
                .map(|c| c / unfrozen as f64 <= share + eps)
                .unwrap_or(false);
            sc.round_frozen.clear();
            let mut froze_any = false;
            for k in 0..k_flows {
                if sc.frozen[k] {
                    continue;
                }
                let s = sc.specs[k];
                let src_share = sc.egress[s.src] / sc.eg_count[s.src] as f64;
                let dst_share = sc.ingress[s.dst] / sc.in_count[s.dst] as f64;
                let mut link_binding = false;
                for &l in sc.routes[k].links() {
                    if sc.link_res[l as usize] / sc.link_count[l as usize] as f64 <= share + eps
                    {
                        link_binding = true;
                    }
                }
                let capped = s.max_rate_bps <= share + eps;
                if core_binding
                    || src_share <= share + eps
                    || dst_share <= share + eps
                    || link_binding
                    || capped
                {
                    sc.frozen[k] = true;
                    sc.rate[k] = share;
                    sc.egress[s.src] = (sc.egress[s.src] - share).max(0.0);
                    sc.ingress[s.dst] = (sc.ingress[s.dst] - share).max(0.0);
                    for &l in sc.routes[k].links() {
                        sc.link_res[l as usize] = (sc.link_res[l as usize] - share).max(0.0);
                    }
                    if let Some(c) = core.as_mut() {
                        *c = (*c - share).max(0.0);
                    }
                    sc.round_frozen.push(k);
                    froze_any = true;
                }
            }
            debug_assert!(froze_any, "water-filling failed to make progress");
            if !froze_any {
                break;
            }
            // The reference reads round-start counts throughout its
            // freeze sweep, so this round's decrements land only now.
            for &k in &sc.round_frozen {
                let s = sc.specs[k];
                sc.eg_count[s.src] -= 1;
                sc.in_count[s.dst] -= 1;
                for &l in sc.routes[k].links() {
                    sc.link_count[l as usize] -= 1;
                }
                unfrozen -= 1;
            }
        }
    }

    /// Advance the fabric by `dt` seconds. Returns the flows that
    /// completed during the step, in id order.
    pub fn step(&mut self, dt: f64) -> Vec<FlowId> {
        assert!(dt > 0.0, "step must be positive");
        self.perf.steps += 1;
        if self.path == StepPath::Reference {
            return self.step_reference(dt);
        }

        if self.flows.is_empty() {
            // No flows: water-filling is vacuous, but idle shapers must
            // still advance (token refill) with the same bookkeeping.
            self.perf.empty_steps += 1;
            for node in &mut self.nodes {
                let granted = node.shaper.transmit(self.now_s, dt, 0.0);
                node.last_tx_bits = granted;
                node.total_tx_bits += granted;
            }
            self.now_s += dt;
            return Vec::new();
        }

        self.refresh_rates();
        let n_nodes = self.nodes.len();
        let Fabric {
            nodes,
            flows,
            scratch: sc,
            now_s,
            ..
        } = &mut *self;

        // Aggregate per-node egress demand. `flows` iterates in key
        // order — exactly `scratch.ids` order — so zipping replaces the
        // reference's per-flow map lookups with a linear walk; each
        // flow's `want` is kept for the deliver pass (same value, same
        // bits — the reference merely recomputes it).
        sc.node_demand.clear();
        sc.node_demand.resize(n_nodes, 0.0);
        sc.want.clear();
        for (f, &r) in flows.values().zip(&sc.rate) {
            let want = (r * dt).min(f.remaining_bits);
            sc.node_demand[f.spec.src] += want;
            sc.want.push(want);
        }

        // Let shapers admit the demand; compute per-node scaling.
        sc.node_scale.clear();
        sc.node_scale.resize(n_nodes, 1.0);
        for (v, node) in nodes.iter_mut().enumerate() {
            let demand = sc.node_demand[v];
            let granted = node.shaper.transmit(*now_s, dt, demand);
            node.last_tx_bits = granted;
            node.total_tx_bits += granted;
            sc.node_scale[v] = if demand > 0.0 { granted / demand } else { 1.0 };
        }

        // Deliver bits and collect completions. `Vec::new` does not
        // allocate until a completion is actually pushed, so the
        // steady state stays allocation-free.
        let mut completed = Vec::new();
        for ((id, f), &want) in flows.iter_mut().zip(&sc.want) {
            let delivered = want * sc.node_scale[f.spec.src];
            f.remaining_bits -= delivered;
            f.last_rate_bps = delivered / dt;
            if f.remaining_bits <= 1e-6 {
                completed.push(*id);
            }
        }
        for id in &completed {
            if let Some(f) = self.flows.remove(id) {
                self.active_eg[f.spec.src] -= 1;
                self.active_in[f.spec.dst] -= 1;
                for &l in f.route.links() {
                    self.active_link[l as usize] -= 1;
                }
            }
        }
        if !completed.is_empty() {
            self.flow_epoch += 1;
        }

        self.now_s += dt;
        completed
    }

    /// The original stepping loop, kept verbatim as the equivalence
    /// baseline (fresh buffers and map lookups every step).
    fn step_reference(&mut self, dt: f64) -> Vec<FlowId> {
        let (rates, rounds) = self.compute_rates_reference();
        // compute_rates_reference: ids, rate, frozen, egress, ingress,
        // the final collect, plus two count vectors per round. With a
        // topology installed, the link residual clone plus one link
        // count vector per round on top (empty Vecs do not allocate,
        // so the flat count is unchanged).
        self.perf.ref_vec_allocs += 6 + 2 * rounds;
        if !self.link_caps.is_empty() {
            self.perf.ref_vec_allocs += 1 + rounds;
        }

        // Aggregate per-node egress demand.
        let mut node_demand = vec![0.0f64; self.nodes.len()];
        for &(id, r) in &rates {
            let f = &self.flows[&id];
            let want = (r * dt).min(f.remaining_bits);
            node_demand[f.spec.src] += want;
        }

        // Let shapers admit the demand; compute per-node scaling.
        let mut node_scale = vec![1.0f64; self.nodes.len()];
        for (v, node) in self.nodes.iter_mut().enumerate() {
            let demand = node_demand[v];
            let granted = node.shaper.transmit(self.now_s, dt, demand);
            node.last_tx_bits = granted;
            node.total_tx_bits += granted;
            node_scale[v] = if demand > 0.0 { granted / demand } else { 1.0 };
        }

        // Deliver bits and collect completions.
        let mut completed = Vec::new();
        for (id, r) in rates {
            // detlint:allow(D5, D11) -- invariant: `rates` was computed from `self.flows` this step; a vanished flow is engine corruption where aborting the shard beats silently continuing
            let f = self.flows.get_mut(&id).expect("flow vanished");
            let want = (r * dt).min(f.remaining_bits);
            let delivered = want * node_scale[f.spec.src];
            f.remaining_bits -= delivered;
            f.last_rate_bps = delivered / dt;
            if f.remaining_bits <= 1e-6 {
                completed.push(id);
            }
        }
        for id in &completed {
            if let Some(f) = self.flows.remove(id) {
                self.active_eg[f.spec.src] -= 1;
                self.active_in[f.spec.dst] -= 1;
                for &l in f.route.links() {
                    self.active_link[l as usize] -= 1;
                }
            }
        }
        if !completed.is_empty() {
            self.flow_epoch += 1;
        }
        self.perf.ref_vec_allocs += 2 + u64::from(!completed.is_empty());

        self.now_s += dt;
        completed
    }

    /// Advance the fabric by up to `max_steps` ticks of `dt` seconds,
    /// appending completed flows to `completed` in exactly the order
    /// repeated [`Fabric::step`] calls would report them. Returns the
    /// number of steps actually taken.
    ///
    /// Stops early only after a step that completes the **last** active
    /// flow, so drain loops never tick past the completion they wait
    /// for; a fabric that starts flow-free runs all `max_steps` as idle
    /// ticks. Callers that need more steps after a drain simply call
    /// again — the remainder batches as an idle jump.
    ///
    /// On the event-driven path (the default) this is where stepping
    /// cost collapses: idle stretches batch through [`Shaper::rest`],
    /// and busy stretches run the event kernel ([`Fabric::next_event`]
    /// horizon + struct-of-arrays stepping). On the fast and reference
    /// paths it is the literal per-step loop, so the three-way
    /// equivalence gate covers batched callers identically.
    pub fn advance(&mut self, dt: f64, max_steps: u64, completed: &mut Vec<FlowId>) -> u64 {
        assert!(dt > 0.0, "step must be positive");
        let mut taken = 0u64;
        if self.path != StepPath::Event {
            while taken < max_steps {
                let done = self.step(dt);
                taken += 1;
                if !done.is_empty() {
                    completed.extend_from_slice(&done);
                    if self.flows.is_empty() {
                        break;
                    }
                }
            }
            return taken;
        }

        while taken < max_steps {
            if self.flows.is_empty() {
                // Idle jump: batch every remaining tick through the
                // shapers' closed-form rests. Grants of an idle step
                // are exactly 0.0 on every shaper, so `last_tx_bits`
                // and `total_tx_bits` land on the stepped loop's
                // values, and the clock advances by the same repeated
                // `+= dt` the loop would perform.
                let k = max_steps - taken;
                for node in &mut self.nodes {
                    node.shaper.rest(self.now_s, dt, k);
                    node.last_tx_bits = 0.0;
                }
                self.now_s = crate::shaper::advance_clock(self.now_s, dt, k);
                self.perf.steps += k;
                self.perf.empty_steps += k;
                self.perf.event_steps += k;
                self.perf.event_jumps += 1;
                taken += k;
                break;
            }
            // (Re)establish the rate cache for the current signature,
            // then run the kernel as far as the event horizon proves
            // the cache must keep hitting; the window's first step
            // plays the general step's role.
            self.refresh_rates();
            let k = self.event_window(dt, max_steps - taken, completed);
            if k > 0 {
                taken += k;
                if self.flows.is_empty() {
                    // The kernel's final step completed the last flow.
                    break;
                }
                continue;
            }
            // Stalled window: an event is due within the guard slack
            // (e.g. a flow is a few ticks from completing) or a shaper
            // offers no closed-form bound. One honest general step
            // guarantees progress.
            let done = self.step(dt);
            taken += 1;
            if !done.is_empty() {
                completed.extend_from_slice(&done);
                if self.flows.is_empty() {
                    break;
                }
            }
        }
        taken
    }

    /// Closed-form min-reduction of the next event horizon: how many
    /// upcoming ticks of `dt` provably cannot change any input of the
    /// cached rate allocation. Per-node [`Shaper::hint_stable_steps`]
    /// crossings (+1: the window's first step is validated against the
    /// live signature before the window opens, the bound covers the
    /// transmits *after* it), the fault schedule's next episode edge
    /// (with two ticks of guard slack for the iterated clock), per-flow
    /// completion horizons (how long `remaining` provably stays above
    /// the per-step demand `rate * dt`, with a relative `1e-6` plus two
    /// absolute guard steps absorbing delivery rounding — available
    /// whenever the rate cache is current), and the caller's `budget`
    /// all reduce in. The bounds are conservative, so actual
    /// completions are still detected eagerly inside the window; the
    /// horizon only proves which re-reads may be skipped.
    pub fn next_event(&self, dt: f64, budget: u64) -> NextEvent {
        let mut ev = NextEvent {
            steps: budget,
            cause: EventCause::Budget,
        };
        if let Some(s) = &self.faults {
            let t_next = s.next_transition_after(self.now_s);
            if t_next.is_finite() {
                let raw = (t_next - self.now_s) / dt;
                let horizon = if raw <= 3.0 {
                    0
                } else {
                    (raw.floor() as u64).saturating_sub(2)
                };
                if horizon < ev.steps {
                    ev = NextEvent {
                        steps: horizon,
                        cause: EventCause::FaultTransition,
                    };
                }
            }
        }
        for (v, node) in self.nodes.iter().enumerate() {
            let stable = node
                .shaper
                .hint_stable_steps(self.now_s, dt)
                .saturating_add(1);
            if stable < ev.steps {
                ev = NextEvent {
                    steps: stable,
                    cause: EventCause::HintCrossing(v),
                };
            }
        }
        let sc = &self.scratch;
        if sc.sig_epoch == self.flow_epoch && sc.rate.len() == self.flows.len() {
            for (i, f) in self.flows.values().enumerate() {
                let h = flow_completion_horizon(f.remaining_bits, sc.rate[i] * dt);
                if h < ev.steps {
                    ev = NextEvent {
                        steps: h,
                        cause: EventCause::Completion(sc.ids[i]),
                    };
                }
            }
        }
        ev
    }

    /// The kernel's sharpened event horizon. Preconditions: the scratch
    /// mirrors (`node_demand`, `want`, `ev_rem`) were gathered for the
    /// current flow set at the current clock. Min-reduces the same
    /// fault-schedule and budget bounds as [`Fabric::next_event`], but
    /// swaps in the per-node [`Shaper::hint_stable_steps_busy`] bound —
    /// the kernel holds each node's demand bit-constant inside the
    /// window (see the demand hoist in [`Fabric::event_window`]), which
    /// is exactly the promise that bound is allowed to assume — and
    /// per-flow completion horizons over the gathered wants. In the
    /// depleted fig19 steady state this is the difference between a
    /// zero-length window (a bucket sitting *at* its hint threshold is
    /// always "one idle tick from crossing" under the demand-agnostic
    /// bound) and a window spanning the whole depletion plateau.
    fn busy_horizon(&self, dt: f64, budget: u64) -> u64 {
        let mut window = budget;
        if let Some(s) = &self.faults {
            let t_next = s.next_transition_after(self.now_s);
            if t_next.is_finite() {
                let raw = (t_next - self.now_s) / dt;
                window = window.min(if raw <= 3.0 {
                    0
                } else {
                    (raw.floor() as u64).saturating_sub(2)
                });
            }
        }
        let sc = &self.scratch;
        for (v, node) in self.nodes.iter().enumerate() {
            if window == 0 {
                return 0;
            }
            let stable = node
                .shaper
                .hint_stable_steps_busy(self.now_s, dt, sc.node_demand[v])
                .saturating_add(1);
            window = window.min(stable);
        }
        for i in 0..sc.want.len() {
            let w = sc.want[i];
            // Quick accept without the division: `remaining` more than
            // `window + 4` demands away (with a relative margin beating
            // the horizon's own `1e-6` discount) cannot bound a window
            // this short.
            if w > 0.0 && sc.ev_rem[i] > (window as f64 + 4.0) * (1.0 + 2e-6) * w {
                continue;
            }
            window = window.min(flow_completion_horizon(sc.ev_rem[i], w));
        }
        window
    }

    /// Run the event kernel for up to `budget` steps. Preconditions:
    /// event path, flows present, and a general step *just* ran (so the
    /// scratch cache mirrors the live flow set). Returns steps taken
    /// (0 when the live signature no longer matches the cache — the
    /// caller's next general step recomputes honestly).
    ///
    /// Every kernel step executes the identical floating-point
    /// recurrences of the fast path's busy step — per-node `transmit`
    /// (shaper state, including RNGs, advances every tick exactly as
    /// stepped), scale division, delivery subtraction, `now += dt` — on
    /// struct-of-arrays mirrors. What it skips, the
    /// [`Fabric::busy_horizon`] proof obligations cover: the per-step
    /// hint/factor gathers and signature compares, the flow-map
    /// walks, and the per-step demand pass — inside the window every
    /// flow's demand `min(rate*dt, remaining)` is provably the constant
    /// bit pattern `rate*dt` (the completion horizons guarantee
    /// `remaining` stays above it), so wants and per-node demand sums
    /// are computed once at entry.
    fn event_window(&mut self, dt: f64, budget: u64, completed: &mut Vec<FlowId>) -> u64 {
        let n_nodes = self.nodes.len();
        {
            let sc = &self.scratch;
            if budget == 0
                || self.flows.is_empty()
                || sc.sig_epoch != self.flow_epoch
                || sc.sig_egress.len() != n_nodes
                || sc.sig_core != self.core_capacity_bps.map(f64::to_bits)
                || sc.sig_links.len() != self.link_caps.len()
                || self
                    .link_caps
                    .iter()
                    .zip(&sc.sig_links)
                    .any(|(cap, sig)| cap.to_bits() != *sig)
            {
                return 0;
            }
        }

        // Entry validation: the cache was signed during the last
        // refresh (one tick ago); re-derive each node's live signature
        // word once and bail to the general path on any mismatch (e.g.
        // a bucket crossed its hint threshold during that step's
        // transmit). A passed check makes the window's first step a
        // proven cache hit; `busy_horizon` extends the proof to the
        // rest.
        let sc = &mut self.scratch;
        for (v, node) in self.nodes.iter().enumerate() {
            let factor = match &self.faults {
                Some(s) => s.factor_at(v, self.now_s),
                None => 1.0,
            };
            let eg = node.shaper.rate_hint(self.now_s).max(0.0) * factor;
            let ing = node.ingress_cap_bps * factor;
            if sc.sig_egress[v] != eg.to_bits() || sc.sig_ingress[v] != ing.to_bits() {
                return 0;
            }
        }

        // Gather the struct-of-arrays mirrors (flow id order — the
        // same order every per-step pass iterates in), then run the
        // demand pass once: wants and per-node demand sums use the same
        // expressions in the same accumulation order as the per-step
        // pass, so the hoisted values are bitwise what every in-window
        // step would have recomputed.
        let k_flows = sc.ids.len();
        sc.ev_src.clear();
        for spec in &sc.specs {
            sc.ev_src.push(spec.src as u32);
        }
        sc.ev_rem.clear();
        for f in self.flows.values() {
            sc.ev_rem.push(f.remaining_bits);
        }
        debug_assert_eq!(sc.ev_rem.len(), k_flows);
        sc.node_demand.clear();
        sc.node_demand.resize(n_nodes, 0.0);
        sc.want.clear();
        for i in 0..k_flows {
            let want = (sc.rate[i] * dt).min(sc.ev_rem[i]);
            sc.node_demand[sc.ev_src[i] as usize] += want;
            sc.want.push(want);
        }
        sc.node_scale.clear();
        sc.node_scale.resize(n_nodes, 1.0);

        // The horizon bounds how far the cache may be reused *without
        // re-validation*; the window's first step needs no horizon at
        // all — the refresh and entry validation just proved its
        // signature live, which is exactly the fast path's per-step
        // check. So the window is always at least one step, and an
        // imminent event (a flow a few ticks from completing, a fault
        // edge inside the guard slack) degrades to single-step windows
        // instead of bouncing back to the general path.
        let horizon = self.busy_horizon(dt, budget);
        let window = horizon.max(1);

        // Deliver-pass strategy. Within the *unclamped* horizon a flow
        // with `want > 1e-6` keeps `remaining > 2*want > 1e-6` (the
        // completion horizons guarantee it) and a zero-want flow never
        // moves, so unless some flow sits in the sub-`1e-6`-want
        // corner (where the absolute completion threshold can be
        // crossed while the demand stays bit-stable), no completion
        // can occur and the per-flow threshold check is dead code the
        // kernel may skip. Independently, when the flow order is
        // src-sorted (the engine starts shuffles src-major), the
        // deliver pass decomposes into contiguous same-source runs
        // with a scalar scale — the per-flow updates are independent,
        // so run order does not affect the bits.
        let sc = &mut self.scratch;
        let completions_possible =
            horizon == 0 || sc.want.iter().any(|&w| w > 0.0 && w <= 1e-6);
        sc.ev_runs.clear();
        if !completions_possible && sc.ev_src.windows(2).all(|p| p[0] <= p[1]) {
            let mut i = 0u32;
            while (i as usize) < k_flows {
                let v = sc.ev_src[i as usize];
                let mut j = i + 1;
                while (j as usize) < k_flows && sc.ev_src[j as usize] == v {
                    j += 1;
                }
                sc.ev_runs.push((i, j));
                i = j;
            }
        }

        let first_new = completed.len();
        let mut taken = 0u64;
        {
            let Fabric {
                nodes,
                scratch: sc,
                now_s,
                ..
            } = &mut *self;
            while taken < window {
                // Transmit pass: demand is the hoisted constant.
                for (v, node) in nodes.iter_mut().enumerate() {
                    let demand = sc.node_demand[v];
                    let granted = node.shaper.transmit(*now_s, dt, demand);
                    node.last_tx_bits = granted;
                    node.total_tx_bits += granted;
                    sc.node_scale[v] = if demand > 0.0 { granted / demand } else { 1.0 };
                }
                // Fused deliver pass; `want * scale` is the identical
                // expression the per-step pass evaluates.
                if !sc.ev_runs.is_empty() {
                    // Run variant: no completion is reachable in this
                    // window, so deliver is pure arithmetic.
                    for &(a, b) in &sc.ev_runs {
                        let s = sc.node_scale[sc.ev_src[a as usize] as usize];
                        let (a, b) = (a as usize, b as usize);
                        for (rem, want) in sc.ev_rem[a..b].iter_mut().zip(&sc.want[a..b]) {
                            *rem -= *want * s;
                        }
                    }
                } else {
                    // Checking variant: completions end the window
                    // after this step (the flow-set epoch is an event).
                    let mut done_any = false;
                    for i in 0..k_flows {
                        sc.ev_rem[i] -= sc.want[i] * sc.node_scale[sc.ev_src[i] as usize];
                        if sc.ev_rem[i] <= 1e-6 {
                            completed.push(sc.ids[i]);
                            done_any = true;
                        }
                    }
                    if done_any {
                        *now_s += dt;
                        taken += 1;
                        break;
                    }
                }
                *now_s += dt;
                taken += 1;
            }
        }
        self.perf.steps += taken;
        self.perf.rate_cache_hits += taken;
        if !self.link_caps.is_empty() {
            self.perf.link_cache_hits += taken;
        }
        self.perf.event_steps += taken;
        self.perf.event_jumps += 1;

        // Scatter the mirrors back and apply completions exactly as a
        // per-step path would have at the completing step. The last
        // delivered rate is recomputed from the (constant) want and the
        // final step's scale — the same `delivered / dt` bits the
        // per-step path stores every tick.
        {
            let sc = &self.scratch;
            for (f, i) in self.flows.values_mut().zip(0..) {
                f.remaining_bits = sc.ev_rem[i];
                f.last_rate_bps = sc.want[i] * sc.node_scale[sc.ev_src[i] as usize] / dt;
            }
        }
        if completed.len() > first_new {
            for id in &completed[first_new..] {
                if let Some(f) = self.flows.remove(id) {
                    self.active_eg[f.spec.src] -= 1;
                    self.active_in[f.spec.dst] -= 1;
                    for &l in f.route.links() {
                        self.active_link[l as usize] -= 1;
                    }
                }
            }
            self.flow_epoch += 1;
        }
        taken
    }

    /// Advance with **no** flows for `duration` (resting: token refill).
    ///
    /// The fast path delegates to [`Shaper::rest`], which replaces the
    /// per-step virtual idle `transmit` calls with each shaper's (often
    /// closed-form or early-exiting) equivalent; the clock still
    /// advances by the same repeated `+= dt` so `now` stays bitwise
    /// identical to the reference loop.
    pub fn rest(&mut self, duration: f64, dt: f64) {
        assert!(self.flows.is_empty(), "rest() with active flows");
        let steps = (duration / dt).round().max(0.0) as u64;
        if self.path == StepPath::Reference {
            for _ in 0..steps {
                for node in &mut self.nodes {
                    node.shaper.transmit(self.now_s, dt, 0.0);
                    node.last_tx_bits = 0.0;
                }
                self.now_s += dt;
            }
            return;
        }
        for node in &mut self.nodes {
            node.shaper.rest(self.now_s, dt, steps);
            if steps > 0 {
                node.last_tx_bits = 0.0;
            }
        }
        self.now_s = crate::shaper::advance_clock(self.now_s, dt, steps);
    }

    /// Reset every node's shaper and the clock (fresh VMs).
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.shaper.reset();
            node.last_tx_bits = 0.0;
            node.total_tx_bits = 0.0;
        }
        self.flows.clear();
        for c in &mut self.active_eg {
            *c = 0;
        }
        for c in &mut self.active_in {
            *c = 0;
        }
        for c in &mut self.active_link {
            *c = 0;
        }
        self.flow_epoch += 1;
        self.now_s = 0.0;
    }
}

/// Multi-tenant cross traffic: a Poisson process of neighbour flows.
///
/// The paper's HPCCloud variability comes from tenants sharing links
/// without QoS; [`crate::shaper::NoiseShaper`] models that at a single
/// endpoint, while `CrossTraffic` models it *inside a fabric* — random
/// neighbour flows between random node pairs contend with the
/// workload's own shuffles through the same max-min allocation, so
/// contention hits exactly the links that happen to be busy.
#[derive(Debug, Clone)]
pub struct CrossTraffic {
    /// Mean neighbour-flow arrivals per second.
    pub arrivals_per_s: f64,
    /// Mean flow size in bits (exponential).
    pub mean_flow_bits: f64,
    /// Per-flow rate cap in bits/s (neighbours rarely get full links).
    pub flow_rate_cap_bps: f64,
    rng: SimRng,
}

impl CrossTraffic {
    /// Create a cross-traffic source.
    pub fn new(arrivals_per_s: f64, mean_flow_bits: f64, flow_rate_cap_bps: f64, seed: u64) -> Self {
        assert!(
            arrivals_per_s >= 0.0 && mean_flow_bits > 0.0 && flow_rate_cap_bps > 0.0,
            "cross-traffic parameters must be positive"
        );
        CrossTraffic {
            arrivals_per_s,
            mean_flow_bits,
            flow_rate_cap_bps,
            rng: SimRng::new(seed),
        }
    }

    /// Inject arrivals for one step of length `dt` into the fabric.
    /// Call once per [`Fabric::step`]; returns the flows started.
    pub fn inject<S: Shaper>(&mut self, fabric: &mut Fabric<S>, dt: f64) -> Vec<FlowId> {
        let n = fabric.node_count();
        if n < 2 || self.arrivals_per_s <= 0.0 {
            return Vec::new();
        }
        let arrivals = self.rng.poisson(self.arrivals_per_s * dt);
        let mut started = Vec::new();
        for _ in 0..arrivals {
            let src = self.rng.index(n);
            let dst = (src + 1 + self.rng.index(n - 1)) % n;
            let bits = self.rng.exponential(1.0 / self.mean_flow_bits);
            let mut spec = FlowSpec::new(src, dst, bits);
            spec.max_rate_bps = self.flow_rate_cap_bps;
            started.push(fabric.start_flow(spec));
        }
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shaper::{StaticShaper, TokenBucket};
    use crate::units::{gbit, gbps};

    fn static_fabric(n: usize, rate: f64) -> Fabric<StaticShaper> {
        let mut f = Fabric::new();
        for _ in 0..n {
            f.add_node(StaticShaper::new(rate), rate);
        }
        f
    }

    #[test]
    fn stalled_node_transmits_nothing_then_recovers() {
        use crate::faults::{FaultEpisode, FaultKind, FaultSchedule};
        let mut f = static_fabric(2, gbps(10.0));
        f.set_fault_schedule(FaultSchedule::from_episodes(
            2,
            100.0,
            [FaultEpisode {
                node: 0,
                start_s: 1.0,
                end_s: 3.0,
                kind: FaultKind::VmStall,
                rate_factor: 0.0,
            }],
        ));
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 10.0));
        // t=0: healthy, full rate.
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(10.0)).abs() < 1.0);
        // t=1 and t=2: stalled, nothing moves.
        f.step(1.0);
        assert_eq!(f.flow_last_rate(id).unwrap(), 0.0);
        assert!(f.node_stalled(0));
        assert_eq!(f.node_fault_factor(0), 0.0);
        f.step(1.0);
        assert_eq!(f.flow_last_rate(id).unwrap(), 0.0);
        // t=3: recovered.
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(10.0)).abs() < 1.0);
        assert!(!f.node_stalled(0));
    }

    #[test]
    fn degraded_node_transmits_at_reduced_rate() {
        use crate::faults::{FaultEpisode, FaultKind, FaultSchedule};
        let mut f = static_fabric(2, gbps(10.0));
        f.set_fault_schedule(FaultSchedule::from_episodes(
            2,
            100.0,
            [FaultEpisode {
                node: 1,
                start_s: 0.0,
                end_s: 50.0,
                kind: FaultKind::LinkDegrade,
                rate_factor: 0.25,
            }],
        ));
        // Flow *into* the degraded node: ingress is scaled too.
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 100.0));
        f.step(1.0);
        assert!((f.flow_last_rate(id).unwrap() - gbps(2.5)).abs() < 1.0);
    }

    #[test]
    fn empty_fault_schedule_matches_no_schedule() {
        use crate::faults::{FaultConfig, FaultSchedule};
        let run = |with_sched: bool| {
            let mut f = static_fabric(3, gbps(10.0));
            if with_sched {
                f.set_fault_schedule(FaultSchedule::generate(
                    &FaultConfig::NONE,
                    3,
                    1000.0,
                    77,
                ));
            }
            f.start_flow(FlowSpec::new(0, 1, gbit(40.0)));
            f.start_flow(FlowSpec::new(2, 1, gbit(15.0)));
            let mut history = Vec::new();
            for _ in 0..20 {
                f.step(0.5);
                history.push((f.node_last_tx_bits(0), f.node_last_tx_bits(2)));
            }
            history
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let mut f = static_fabric(2, gbps(10.0));
        let id = f.start_flow(FlowSpec::new(0, 1, gbps(10.0) * 5.0));
        let mut done = Vec::new();
        for _ in 0..60 {
            done.extend(f.step(0.1));
        }
        assert_eq!(done, vec![id]);
        // 50 Gbit at 10 Gbps = 5 s; completed within 5.0..5.1 s.
        assert!((f.now() - 6.0).abs() < 1e-9);
        assert!((f.node_total_tx_bits(0) - gbps(10.0) * 5.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_ingress_fairly() {
        // Nodes 0 and 1 both send to node 2: ingress at 2 is the
        // bottleneck; each should get half.
        let mut f = static_fabric(3, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(100.0)));
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(100.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn egress_sharing_and_unconstrained_flow() {
        // Node 0 sends two flows (shares its 10 Gbps egress), node 1
        // sends one flow to a different destination at full rate.
        let mut f = static_fabric(4, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let b = f.start_flow(FlowSpec::new(0, 3, gbit(1000.0)));
        let c = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        // Max-min: a shares egress(0) with b → 5; c gets ingress(2)
        // leftover = min(egress(1)=10, 10-5=5) = 5.
        assert!((f.flow_last_rate(a).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(5.0)).abs() < 1.0);
        assert!((f.flow_last_rate(c).unwrap() - gbps(5.0)).abs() < 1.0);
    }

    #[test]
    fn per_flow_cap_releases_bandwidth_to_others() {
        let mut f = static_fabric(3, gbps(10.0));
        let mut spec = FlowSpec::new(0, 2, gbit(1000.0));
        spec.max_rate_bps = gbps(1.0);
        let a = f.start_flow(spec);
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(1.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(9.0)).abs() < 1.0);
    }

    #[test]
    fn token_bucket_node_throttles_only_its_flows() {
        let mut f: Fabric<TokenBucket> = Fabric::new();
        // Node 0: nearly-empty bucket; node 1: full bucket; node 2: sink.
        let empty = TokenBucket::new(0.0, gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        let full = TokenBucket::new(gbit(5000.0), gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        let sink = TokenBucket::sigma_rho(gbit(1e6), gbps(20.0), gbps(20.0));
        f.add_node(empty, gbps(20.0));
        f.add_node(full, gbps(20.0));
        f.add_node(sink, gbps(20.0));
        let slow = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let fast = f.start_flow(FlowSpec::new(1, 2, gbit(1000.0)));
        f.step(0.1);
        let r_slow = f.flow_last_rate(slow).unwrap();
        let r_fast = f.flow_last_rate(fast).unwrap();
        assert!(r_slow < gbps(1.3), "slow {r_slow}");
        assert!(r_fast > gbps(9.0), "fast {r_fast}");
    }

    #[test]
    fn rest_refills_buckets() {
        let mut f: Fabric<TokenBucket> = Fabric::new();
        let tb = TokenBucket::new(0.0, gbit(5000.0), gbps(10.0), gbps(1.0), gbps(1.0));
        f.add_node(tb, gbps(10.0));
        f.rest(120.0, 0.1);
        assert!((f.node_shaper(0).budget_bits() - gbit(120.0)).abs() < gbit(0.01));
        assert!((f.now() - 120.0).abs() < 1e-6);
    }

    #[test]
    fn reset_restores_everything() {
        let mut f = static_fabric(2, gbps(10.0));
        f.start_flow(FlowSpec::new(0, 1, gbit(1.0)));
        f.step(0.1);
        f.reset();
        assert_eq!(f.now(), 0.0);
        assert_eq!(f.active_flows(), 0);
        assert_eq!(f.node_total_tx_bits(0), 0.0);
    }

    #[test]
    fn completion_order_is_deterministic() {
        let mut f = static_fabric(3, gbps(10.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1.0)));
        let b = f.start_flow(FlowSpec::new(1, 2, gbit(1.0)));
        // Both complete in the same step; ids reported in order.
        let done = f.step(1.0);
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback_flows() {
        let mut f = static_fabric(2, gbps(10.0));
        f.start_flow(FlowSpec::new(1, 1, 1.0));
    }

    #[test]
    fn oversubscribed_core_caps_aggregate_rate() {
        // 4 senders to 4 distinct receivers: node caps allow 40 Gbps
        // aggregate, but a 10 Gbps core forces 2.5 Gbps each.
        let mut f = static_fabric(8, gbps(10.0));
        f.set_core_capacity(gbps(10.0));
        let ids: Vec<_> = (0..4)
            .map(|i| f.start_flow(FlowSpec::new(i, i + 4, gbit(1000.0))))
            .collect();
        f.step(0.1);
        for id in &ids {
            assert!((f.flow_last_rate(*id).unwrap() - gbps(2.5)).abs() < 1.0);
        }
        // Removing the constraint restores full bisection bandwidth.
        f.clear_core_capacity();
        f.step(0.1);
        for id in &ids {
            assert!((f.flow_last_rate(*id).unwrap() - gbps(10.0)).abs() < 1.0);
        }
    }

    #[test]
    fn core_interacts_with_per_node_caps() {
        // One sender capped at 1 Gbps by its own NIC; others share the
        // remaining core fairly.
        let mut f: Fabric<StaticShaper> = Fabric::new();
        f.add_node(StaticShaper::new(gbps(1.0)), gbps(10.0));
        for _ in 0..3 {
            f.add_node(StaticShaper::new(gbps(10.0)), gbps(10.0));
        }
        f.set_core_capacity(gbps(7.0));
        let a = f.start_flow(FlowSpec::new(0, 2, gbit(1000.0)));
        let b = f.start_flow(FlowSpec::new(1, 3, gbit(1000.0)));
        f.step(0.1);
        // a limited by its 1 Gbps NIC; b gets the core's leftover 6.
        assert!((f.flow_last_rate(a).unwrap() - gbps(1.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(6.0)).abs() < 1.0);
    }

    #[test]
    fn cross_traffic_injects_poisson_flows() {
        let mut f = static_fabric(6, gbps(10.0));
        let mut ct = CrossTraffic::new(5.0, gbit(2.0), gbps(2.0), 7);
        let mut started = 0usize;
        for _ in 0..1000 {
            started += ct.inject(&mut f, 0.1).len();
            f.step(0.1);
        }
        // ~5/s over 100 s → ~500 arrivals, Poisson spread.
        assert!(started > 350 && started < 650, "started {started}");
    }

    #[test]
    fn cross_traffic_steals_bandwidth_from_a_foreground_flow() {
        let transfer_time = |with_noise: bool| {
            // Offered noise load (2/s × 5 Gbit = 10 Gbps) stays below
            // the fabric's capacity so the flow population is stable.
            let mut f = static_fabric(4, gbps(10.0));
            let mut ct = CrossTraffic::new(2.0, gbit(5.0), gbps(5.0), 3);
            let id = f.start_flow(FlowSpec::new(0, 1, gbit(400.0)));
            let mut t = 0.0;
            loop {
                if with_noise {
                    ct.inject(&mut f, 0.1);
                }
                let done = f.step(0.1);
                t += 0.1;
                if done.contains(&id) {
                    return t;
                }
                assert!(t < 10_000.0, "foreground flow starved");
            }
        };
        let clean = transfer_time(false);
        let noisy = transfer_time(true);
        assert!(noisy > 1.1 * clean, "clean {clean} noisy {noisy}");
    }

    #[test]
    fn cross_traffic_is_deterministic() {
        let run = || {
            let mut f = static_fabric(4, gbps(10.0));
            let mut ct = CrossTraffic::new(3.0, gbit(1.0), gbps(1.0), 11);
            let mut ids = Vec::new();
            for _ in 0..200 {
                ids.extend(ct.inject(&mut f, 0.1));
                f.step(0.1);
            }
            ids.len()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_link_bottlenecks_routed_flows() {
        // Two 10 Gbps senders into two receivers, but both routes cross
        // one 4 Gbps directed link: each flow gets 2 Gbps, not 10.
        let mut f = static_fabric(4, gbps(10.0));
        f.set_link_caps(vec![gbps(4.0)]);
        let a = f.start_flow_routed(FlowSpec::new(0, 2, gbit(100.0)), LinkRoute::new(&[0]));
        let b = f.start_flow_routed(FlowSpec::new(1, 3, gbit(100.0)), LinkRoute::new(&[0]));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(2.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(2.0)).abs() < 1.0);
        assert!(f.perf().link_recomputes > 0);
    }

    #[test]
    fn unrouted_flow_ignores_installed_links() {
        let mut f = static_fabric(2, gbps(10.0));
        f.set_link_caps(vec![gbps(1.0)]);
        let id = f.start_flow(FlowSpec::new(0, 1, gbit(100.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(id).unwrap() - gbps(10.0)).abs() < 1.0);
    }

    #[test]
    fn linked_max_min_frees_headroom_for_unbottlenecked_flows() {
        // Flow a crosses a 2 Gbps link; flow b shares a's 10 Gbps source
        // but not the link, so max-min gives b the 8 Gbps a cannot use.
        let mut f = static_fabric(3, gbps(10.0));
        f.set_link_caps(vec![gbps(2.0)]);
        let a = f.start_flow_routed(FlowSpec::new(0, 1, gbit(100.0)), LinkRoute::new(&[0]));
        let b = f.start_flow(FlowSpec::new(0, 2, gbit(100.0)));
        f.step(0.1);
        assert!((f.flow_last_rate(a).unwrap() - gbps(2.0)).abs() < 1.0);
        assert!((f.flow_last_rate(b).unwrap() - gbps(8.0)).abs() < 1.0);
    }

    #[test]
    fn linked_fabric_is_bit_identical_across_all_three_paths() {
        let run = |path: StepPath| {
            let mut f: Fabric<TokenBucket> = Fabric::new();
            for _ in 0..6 {
                f.add_node(
                    TokenBucket::new(gbit(8.0), gbit(8.0), gbps(10.0), gbps(1.0), gbps(1.0)),
                    gbps(10.0),
                );
            }
            f.force_path(path);
            // A 3-link chain shared pairwise by staggered flows.
            f.set_link_caps(vec![gbps(3.0), gbps(5.0), gbps(7.0)]);
            let mut rng = SimRng::new(0x70b0);
            let mut completed = Vec::new();
            for round in 0..20u64 {
                let src = rng.index(6);
                let dst = (src + 1 + rng.index(5)) % 6;
                let links: &[u32] = match round % 4 {
                    0 => &[0],
                    1 => &[0, 1],
                    2 => &[1, 2],
                    _ => &[],
                };
                f.start_flow_routed(
                    FlowSpec::new(src, dst, gbit(2.0) * (1.0 + rng.uniform())),
                    LinkRoute::new(links),
                );
                f.advance(0.01, 50, &mut completed);
            }
            f.advance(0.01, 200_000, &mut completed);
            let mut sig = Vec::new();
            sig.push(f.now().to_bits());
            for v in 0..6 {
                sig.push(f.node_total_tx_bits(v).to_bits());
            }
            sig.extend(completed.iter().map(|id| id.0));
            (sig, f.active_flows())
        };
        let ev = run(StepPath::Event);
        let fast = run(StepPath::Fast);
        let slow = run(StepPath::Reference);
        assert_eq!(ev, fast, "event vs fast diverged on a linked fabric");
        assert_eq!(fast, slow, "fast vs reference diverged on a linked fabric");
    }

    #[test]
    fn empty_link_set_is_bitwise_the_flat_fabric() {
        let run = |install_empty: bool| {
            let mut f: Fabric<TokenBucket> = Fabric::new();
            for _ in 0..4 {
                f.add_node(
                    TokenBucket::new(gbit(4.0), gbit(4.0), gbps(10.0), gbps(1.0), gbps(1.0)),
                    gbps(10.0),
                );
            }
            if install_empty {
                f.set_link_caps(Vec::new());
            }
            let mut completed = Vec::new();
            for i in 0..8 {
                f.start_flow(FlowSpec::new(i % 4, (i + 1) % 4, gbit(3.0)));
                f.advance(0.01, 100, &mut completed);
            }
            f.advance(0.01, 100_000, &mut completed);
            let perf = f.perf();
            (
                f.now().to_bits(),
                (0..4).map(|v| f.node_total_tx_bits(v).to_bits()).collect::<Vec<_>>(),
                completed,
                perf.rate_recomputes,
                perf.link_recomputes + perf.link_cache_hits,
            )
        };
        let flat = run(false);
        let installed = run(true);
        assert_eq!(flat.4, 0, "flat fabric must book no link counters");
        assert_eq!(installed.4, 0, "empty link set must book no link counters");
        assert_eq!(flat, installed);
    }
}
