//! A minimal discrete-event queue.
//!
//! The fluid fabric advances in fixed steps, but job-level simulation
//! (task completions, stage barriers) is naturally event driven.
//! [`EventQueue`] is a time-ordered priority queue with stable FIFO
//! ordering for simultaneous events — determinism matters more than
//! nanoseconds here.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: fire time plus payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking
        // ties by insertion order (earlier seq first).
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Empty queue with room for `capacity` events before reallocating
    /// — callers that know their event population (e.g. one completion
    /// per task in a stage) can avoid heap growth in the stepping loop.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `payload` at absolute time `at` (seconds).
    pub fn schedule(&mut self, at: f64, payload: T) {
        assert!(at.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Pop the earliest event only if it fires at or before `t`.
    pub fn pop_due(&mut self, t: f64) -> Option<(f64, T)> {
        if self.peek_time().is_some_and(|at| at <= t) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "early");
        q.schedule(10.0, "late");
        assert_eq!(q.pop_due(5.0), Some((1.0, "early")));
        assert_eq!(q.pop_due(5.0), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.peek_time(), Some(2.5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
