//! Traffic access patterns.
//!
//! The paper drives every link with three patterns (Section 3.1):
//!
//! * **full-speed** — transfer continuously (long-running batch or
//!   streaming jobs);
//! * **10-30** — transfer 10 s, rest 30 s (short analytics queries);
//! * **5-30** — transfer 5 s, rest 30 s.
//!
//! [`TrafficPattern`] captures these as a duty cycle over simulated time.

use std::fmt;

/// A deterministic on/off traffic schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Continuous transmission.
    FullSpeed,
    /// Transmit for `on_s` seconds, then idle `off_s` seconds, repeating.
    DutyCycle {
        /// Transmission burst length in seconds.
        on_s: f64,
        /// Idle gap length in seconds.
        off_s: f64,
    },
}

impl TrafficPattern {
    /// The paper's "10-30" pattern.
    pub const TEN_THIRTY: TrafficPattern = TrafficPattern::DutyCycle {
        on_s: 10.0,
        off_s: 30.0,
    };

    /// The paper's "5-30" pattern.
    pub const FIVE_THIRTY: TrafficPattern = TrafficPattern::DutyCycle {
        on_s: 5.0,
        off_s: 30.0,
    };

    /// All three patterns used throughout the measurement campaigns.
    pub const ALL: [TrafficPattern; 3] = [
        TrafficPattern::FullSpeed,
        TrafficPattern::TEN_THIRTY,
        TrafficPattern::FIVE_THIRTY,
    ];

    /// Is the sender transmitting at simulated time `t` (seconds)?
    pub fn is_on(&self, t: f64) -> bool {
        match *self {
            TrafficPattern::FullSpeed => true,
            TrafficPattern::DutyCycle { on_s, off_s } => {
                let period = on_s + off_s;
                debug_assert!(period > 0.0);
                t.rem_euclid(period) < on_s
            }
        }
    }

    /// Fraction of wall time spent transmitting.
    pub fn duty_fraction(&self) -> f64 {
        match *self {
            TrafficPattern::FullSpeed => 1.0,
            TrafficPattern::DutyCycle { on_s, off_s } => on_s / (on_s + off_s),
        }
    }

    /// Time elapsed inside the current burst, or `None` while idle.
    ///
    /// Useful for models whose behaviour depends on burst age (e.g. GCE
    /// flow ramp-up through gateway routing).
    pub fn burst_age(&self, t: f64) -> Option<f64> {
        match *self {
            TrafficPattern::FullSpeed => Some(t),
            TrafficPattern::DutyCycle { on_s, off_s } => {
                let phase = t.rem_euclid(on_s + off_s);
                (phase < on_s).then_some(phase)
            }
        }
    }

    /// Short label matching the paper's figures.
    pub fn label(&self) -> String {
        match *self {
            TrafficPattern::FullSpeed => "full-speed".to_string(),
            TrafficPattern::DutyCycle { on_s, off_s } => {
                format!("{}-{}", on_s.round() as i64, off_s.round() as i64)
            }
        }
    }
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_speed_always_on() {
        for t in [0.0, 1.5, 1e6] {
            assert!(TrafficPattern::FullSpeed.is_on(t));
        }
        assert_eq!(TrafficPattern::FullSpeed.duty_fraction(), 1.0);
    }

    #[test]
    fn ten_thirty_cycle() {
        let p = TrafficPattern::TEN_THIRTY;
        assert!(p.is_on(0.0));
        assert!(p.is_on(9.99));
        assert!(!p.is_on(10.0));
        assert!(!p.is_on(39.99));
        assert!(p.is_on(40.0));
        assert!((p.duty_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn five_thirty_cycle() {
        let p = TrafficPattern::FIVE_THIRTY;
        assert!(p.is_on(4.9));
        assert!(!p.is_on(5.0));
        assert!(p.is_on(35.0));
        assert!((p.duty_fraction() - 5.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn burst_age_tracks_phase() {
        let p = TrafficPattern::TEN_THIRTY;
        assert_eq!(p.burst_age(3.0), Some(3.0));
        assert_eq!(p.burst_age(12.0), None);
        assert_eq!(p.burst_age(42.5), Some(2.5));
        assert_eq!(TrafficPattern::FullSpeed.burst_age(100.0), Some(100.0));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(TrafficPattern::FullSpeed.label(), "full-speed");
        assert_eq!(TrafficPattern::TEN_THIRTY.label(), "10-30");
        assert_eq!(TrafficPattern::FIVE_THIRTY.label(), "5-30");
    }
}
