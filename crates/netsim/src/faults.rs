//! Deterministic fault injection for long-running campaigns.
//!
//! The paper's measurement campaigns "ran continuously for one week"
//! per VM pair and its Spark experiments span hundreds of runs. At that
//! scale the environment itself misbehaves: VMs stall or get preempted,
//! links degrade under maintenance or congestion, and packet-loss
//! bursts eat probes. Henning et al. and Gent & Kotthoff document
//! exactly these regimes on virtualised hardware. This module provides
//! a *seed-deterministic* fault layer so those phenomena can be
//! reproduced bit-for-bit:
//!
//! * [`FaultConfig`] — per-provider fault-rate parameters (all zero by
//!   default, so existing goldens are untouched).
//! * [`FaultSchedule`] — the materialized, time-ordered fault timeline
//!   for a set of nodes over a horizon, generated through the same
//!   [`EventQueue`](crate::events::EventQueue) discipline the rest of
//!   the simulator uses (stable ordering for simultaneous events).
//! * [`FaultInjector`] — a [`Shaper`] wrapper that applies a node's
//!   fault factor to a single shaped endpoint (the campaign path).
//! * [`Fabric::set_fault_schedule`](crate::fabric::Fabric::set_fault_schedule)
//!   threads a schedule into the multi-node fabric so faulted nodes
//!   transmit at zero/degraded rate for the fault window (the bigdata
//!   path).

use crate::events::EventQueue;
use crate::rng::{derive_seed, SimRng};
use crate::shaper::Shaper;

/// What kind of episode hit a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The VM is stalled (hypervisor pause, reboot, preemption): it
    /// transmits and receives nothing for the episode.
    VmStall,
    /// Link capacity degraded to a fraction of nominal (maintenance,
    /// path reroute, chronic congestion).
    LinkDegrade,
    /// A packet-loss burst: goodput collapses by the loss fraction and
    /// probes sent during the burst may be lost.
    LossBurst,
}

impl FaultKind {
    /// Stable label for reports and CSV exports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::VmStall => "vm-stall",
            FaultKind::LinkDegrade => "link-degrade",
            FaultKind::LossBurst => "loss-burst",
        }
    }
}

/// One materialized fault episode on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// Node the episode applies to.
    pub node: usize,
    /// Episode start, seconds.
    pub start_s: f64,
    /// Episode end (exclusive), seconds.
    pub end_s: f64,
    /// Episode class.
    pub kind: FaultKind,
    /// Multiplier on the node's transmit rate while active
    /// (0.0 for a stall, e.g. 0.3 for a 70% capacity degradation).
    pub rate_factor: f64,
}

impl FaultEpisode {
    /// Whether the episode is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.start_s <= t && t < self.end_s
    }

    /// Episode duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Fault-rate parameters, typically attached to a cloud profile.
///
/// All rates are **per hour of simulated time per node**; durations are
/// means of exponential distributions. The default ([`FaultConfig::NONE`])
/// disables every class, so fault-free paths are byte-identical to the
/// pre-fault-layer simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// VM stall/reboot episodes per node-hour.
    pub stall_rate_per_hour: f64,
    /// Mean stall duration, seconds.
    pub stall_mean_s: f64,
    /// Link-degradation episodes per node-hour.
    pub degrade_rate_per_hour: f64,
    /// Mean degradation duration, seconds.
    pub degrade_mean_s: f64,
    /// Lower bound of the degraded rate factor (uniform draw).
    pub degrade_min_factor: f64,
    /// Upper bound of the degraded rate factor (uniform draw).
    pub degrade_max_factor: f64,
    /// Packet-loss bursts per node-hour.
    pub loss_rate_per_hour: f64,
    /// Mean loss-burst duration, seconds.
    pub loss_mean_s: f64,
    /// Loss fraction during a burst (goodput factor is `1 - loss`).
    pub loss_frac: f64,
    /// Probability that any individual measurement probe/sample is lost
    /// by the harness itself (independent of episodes).
    pub probe_loss_prob: f64,
    /// VM-pair deaths (preemption, unrecoverable stall) per pair-hour —
    /// used by fleet campaigns; a dead pair stops reporting for good.
    pub pair_death_rate_per_hour: f64,
}

impl FaultConfig {
    /// Everything off: the schedule is empty and every fault-aware path
    /// must behave identically to its fault-free counterpart.
    pub const NONE: FaultConfig = FaultConfig {
        stall_rate_per_hour: 0.0,
        stall_mean_s: 0.0,
        degrade_rate_per_hour: 0.0,
        degrade_mean_s: 0.0,
        degrade_min_factor: 1.0,
        degrade_max_factor: 1.0,
        loss_rate_per_hour: 0.0,
        loss_mean_s: 0.0,
        loss_frac: 0.0,
        probe_loss_prob: 0.0,
        pair_death_rate_per_hour: 0.0,
    };

    /// Whether every fault class is disabled.
    pub fn is_off(&self) -> bool {
        self.stall_rate_per_hour == 0.0
            && self.degrade_rate_per_hour == 0.0
            && self.loss_rate_per_hour == 0.0
            && self.probe_loss_prob == 0.0
            && self.pair_death_rate_per_hour == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// Per-node episode index with a prefix-max of episode end times, so
/// point queries only walk back while an earlier episode can still be
/// active.
#[derive(Debug, Clone, Default)]
struct NodeEpisodes {
    /// Episodes sorted by start time.
    episodes: Vec<FaultEpisode>,
    /// `running_max_end[i] = max(episodes[0..=i].end_s)`.
    running_max_end: Vec<f64>,
}

impl NodeEpisodes {
    fn push(&mut self, ep: FaultEpisode) {
        let prev = self.running_max_end.last().copied().unwrap_or(f64::NEG_INFINITY);
        self.running_max_end.push(prev.max(ep.end_s));
        self.episodes.push(ep);
    }

    /// Minimum rate factor over all episodes active at `t` (1.0 if none).
    fn factor_at(&self, t: f64) -> f64 {
        let mut factor = 1.0f64;
        // First episode starting after t cannot be active; walk back
        // from the last episode with start <= t while the prefix-max end
        // says an active episode may still exist.
        let idx = self.episodes.partition_point(|e| e.start_s <= t);
        for j in (0..idx).rev() {
            if self.running_max_end[j] <= t {
                break;
            }
            if self.episodes[j].active_at(t) {
                factor = factor.min(self.episodes[j].rate_factor);
            }
        }
        factor
    }

    /// Whether a stall episode is active at `t`.
    fn stalled_at(&self, t: f64) -> bool {
        let idx = self.episodes.partition_point(|e| e.start_s <= t);
        for j in (0..idx).rev() {
            if self.running_max_end[j] <= t {
                break;
            }
            if self.episodes[j].kind == FaultKind::VmStall && self.episodes[j].active_at(t) {
                return true;
            }
        }
        false
    }
}

/// A materialized, seed-deterministic fault timeline for `n` nodes over
/// a fixed horizon.
///
/// The same `(config, n_nodes, horizon_s, seed)` tuple always produces a
/// bit-identical timeline; per-node and per-class streams are decoupled
/// through [`derive_seed`], so adding nodes or classes never perturbs
/// the episodes of existing ones.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    per_node: Vec<NodeEpisodes>,
    timeline: Vec<FaultEpisode>,
    horizon_s: f64,
}

/// Seed-derivation labels for the per-class streams (stable constants:
/// reordering the generation code must not change the timeline).
const LABEL_STALL: u64 = 0x5741;
const LABEL_DEGRADE: u64 = 0xDE64;
const LABEL_LOSS: u64 = 0x1055;

impl FaultSchedule {
    /// An empty schedule (no faults ever) for `n_nodes` nodes.
    pub fn empty(n_nodes: usize, horizon_s: f64) -> Self {
        FaultSchedule {
            per_node: vec![NodeEpisodes::default(); n_nodes],
            timeline: Vec::new(),
            horizon_s,
        }
    }

    /// Build a schedule from hand-authored episodes (sorted by start
    /// time internally). Useful for scripted scenarios — e.g. "stall
    /// node 3 at t=40 for 25 s" in a speculation experiment — and for
    /// tests that need exact fault windows.
    pub fn from_episodes(
        n_nodes: usize,
        horizon_s: f64,
        episodes: impl IntoIterator<Item = FaultEpisode>,
    ) -> Self {
        let mut queue: EventQueue<FaultEpisode> = EventQueue::new();
        for ep in episodes {
            assert!(ep.node < n_nodes, "episode on unknown node {}", ep.node);
            assert!(ep.start_s < ep.end_s, "episode must have positive duration");
            queue.schedule(ep.start_s, ep);
        }
        let mut schedule = FaultSchedule::empty(n_nodes, horizon_s);
        while let Some((_, ep)) = queue.pop() {
            schedule.timeline.push(ep);
            schedule.per_node[ep.node].push(ep);
        }
        schedule
    }

    /// Generate the timeline for `n_nodes` nodes over `[0, horizon_s)`.
    ///
    /// Arrivals within each class are Poisson (exponential gaps);
    /// durations are exponential with the class mean; degradation
    /// factors are uniform in the configured range. Episodes are
    /// clipped to the horizon. Generation funnels through an
    /// [`EventQueue`] so that simultaneous episodes order stably.
    pub fn generate(config: &FaultConfig, n_nodes: usize, horizon_s: f64, seed: u64) -> Self {
        assert!(horizon_s >= 0.0, "fault horizon must be non-negative");
        let mut queue: EventQueue<FaultEpisode> = EventQueue::new();
        for node in 0..n_nodes {
            let node_seed = derive_seed(seed, node as u64);
            Self::arrivals(
                &mut queue,
                node,
                horizon_s,
                config.stall_rate_per_hour,
                config.stall_mean_s,
                SimRng::new(derive_seed(node_seed, LABEL_STALL)),
                |_| (FaultKind::VmStall, 0.0),
            );
            let (dmin, dmax) = (config.degrade_min_factor, config.degrade_max_factor);
            Self::arrivals(
                &mut queue,
                node,
                horizon_s,
                config.degrade_rate_per_hour,
                config.degrade_mean_s,
                SimRng::new(derive_seed(node_seed, LABEL_DEGRADE)),
                move |rng| (FaultKind::LinkDegrade, rng.uniform_in(dmin, dmax)),
            );
            let loss = config.loss_frac;
            Self::arrivals(
                &mut queue,
                node,
                horizon_s,
                config.loss_rate_per_hour,
                config.loss_mean_s,
                SimRng::new(derive_seed(node_seed, LABEL_LOSS)),
                move |_| (FaultKind::LossBurst, (1.0 - loss).max(0.0)),
            );
        }

        let mut schedule = FaultSchedule::empty(n_nodes, horizon_s);
        while let Some((_, ep)) = queue.pop() {
            schedule.timeline.push(ep);
            schedule.per_node[ep.node].push(ep);
        }
        schedule
    }

    /// Pour one class's Poisson arrivals for one node into the queue.
    fn arrivals(
        queue: &mut EventQueue<FaultEpisode>,
        node: usize,
        horizon_s: f64,
        rate_per_hour: f64,
        mean_dur_s: f64,
        mut rng: SimRng,
        mut kind_and_factor: impl FnMut(&mut SimRng) -> (FaultKind, f64),
    ) {
        if rate_per_hour <= 0.0 || mean_dur_s <= 0.0 {
            return;
        }
        let rate_per_s = rate_per_hour / 3600.0;
        let mut t = rng.exponential(rate_per_s);
        while t < horizon_s {
            let dur = rng.exponential(1.0 / mean_dur_s);
            let (kind, rate_factor) = kind_and_factor(&mut rng);
            queue.schedule(
                t,
                FaultEpisode {
                    node,
                    start_s: t,
                    end_s: (t + dur).min(horizon_s),
                    kind,
                    rate_factor,
                },
            );
            t += rng.exponential(rate_per_s);
        }
    }

    /// The full timeline, ordered by start time (FIFO-stable for ties).
    pub fn timeline(&self) -> &[FaultEpisode] {
        &self.timeline
    }

    /// Episodes of one node, ordered by start time.
    pub fn node_episodes(&self, node: usize) -> &[FaultEpisode] {
        &self.per_node[node].episodes
    }

    /// Number of nodes the schedule covers.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// The generation horizon in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Whether the timeline has no episodes at all.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }

    /// Transmit-rate factor for `node` at time `t`: 1.0 when healthy,
    /// 0.0 while stalled, the minimum degradation factor when one or
    /// more degrade/loss episodes overlap.
    pub fn factor_at(&self, node: usize, t: f64) -> f64 {
        match self.per_node.get(node) {
            Some(eps) => eps.factor_at(t),
            None => 1.0,
        }
    }

    /// Earliest episode edge (start or end) strictly after time `t`,
    /// or `f64::INFINITY` when no edge remains.
    ///
    /// Every change of any node's rate factor happens at an episode
    /// start or end, so `factor_at(node, u)` is constant for all nodes
    /// over `t <= u < next_transition_after(t)`. The event-driven
    /// fabric engine turns this into a conservative step horizon. The
    /// scan is O(timeline) on purpose: tests (and future generators)
    /// may push episodes directly, so no precomputed edge index can be
    /// trusted to stay in sync.
    pub fn next_transition_after(&self, t: f64) -> f64 {
        let mut next = f64::INFINITY;
        for e in &self.timeline {
            if e.start_s > t {
                next = next.min(e.start_s);
            }
            if e.end_s > t {
                next = next.min(e.end_s);
            }
        }
        next
    }

    /// Whether `node` is inside a VM-stall episode at time `t`.
    pub fn stalled_at(&self, node: usize, t: f64) -> bool {
        self.per_node
            .get(node)
            .is_some_and(|eps| eps.stalled_at(t))
    }

    /// The stall episode (if any) covering time `t` on `node`.
    pub fn stall_covering(&self, node: usize, t: f64) -> Option<FaultEpisode> {
        self.per_node.get(node).and_then(|eps| {
            eps.episodes
                .iter()
                .find(|e| e.kind == FaultKind::VmStall && e.active_at(t))
                .copied()
        })
    }

    /// Total seconds of `[0, horizon)` during which `node` is stalled
    /// (union of stall episodes).
    pub fn stalled_time_s(&self, node: usize) -> f64 {
        let eps = match self.per_node.get(node) {
            Some(e) => e,
            None => return 0.0,
        };
        // Merge overlapping stall intervals (episodes are start-sorted).
        let mut total = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for e in eps.episodes.iter().filter(|e| e.kind == FaultKind::VmStall) {
            match cur {
                Some((s, en)) if e.start_s <= en => cur = Some((s, en.max(e.end_s))),
                Some((s, en)) => {
                    total += en - s;
                    cur = Some((e.start_s, e.end_s));
                }
                None => cur = Some((e.start_s, e.end_s)),
            }
        }
        if let Some((s, en)) = cur {
            total += en - s;
        }
        total
    }
}

/// A [`Shaper`] wrapper applying one node's fault factor to a single
/// shaped endpoint — the campaign path, where there is no fabric.
///
/// While a stall is active the wrapped shaper sees zero demand (so
/// token buckets keep refilling, exactly as a paused VM's would); during
/// a degradation episode only the degraded fraction of the demand is
/// offered downstream.
pub struct FaultInjector<S> {
    inner: S,
    node: usize,
    schedule: FaultSchedule,
}

impl<S: Shaper> FaultInjector<S> {
    /// Wrap `inner` as node `node` of `schedule`.
    pub fn new(inner: S, node: usize, schedule: FaultSchedule) -> Self {
        FaultInjector {
            inner,
            node,
            schedule,
        }
    }

    /// The wrapped shaper.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The schedule driving this injector.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl<S: Shaper> Shaper for FaultInjector<S> {
    fn transmit(&mut self, now: f64, dt: f64, demand_bits: f64) -> f64 {
        let factor = self.schedule.factor_at(self.node, now);
        // A fault degrades the *link ceiling*, not the demand: during a
        // degrade episode the node may move at most `factor` of its
        // nominal rate, and during a stall nothing at all. The ceiling
        // formulation also sidesteps `inf * 0 = NaN` for the routine
        // unbounded-demand case.
        let offered = if factor <= 0.0 {
            0.0
        } else if factor >= 1.0 {
            demand_bits
        } else {
            demand_bits.min(factor * self.inner.rate_hint(now) * dt)
        };
        self.inner.transmit(now, dt, offered)
    }

    fn rate_hint(&self, now: f64) -> f64 {
        self.inner.rate_hint(now) * self.schedule.factor_at(self.node, now)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn token_budget_bits(&self) -> Option<f64> {
        self.inner.token_budget_bits()
    }

    fn rest(&mut self, now: f64, dt: f64, steps: u64) {
        // With zero demand the offered volume is exactly 0.0 for every
        // fault factor (0.0, the demand itself, or 0.0.min(ceiling)),
        // and `factor_at` reads no mutable state — so the idle loop is
        // precisely the inner shaper's idle loop.
        self.inner.rest(now, dt, steps);
    }

    fn hint_stable_steps(&self, now: f64, dt: f64) -> u64 {
        // The composed hint is `inner × factor`: pinned while both the
        // inner hint and the schedule's factor are pinned. The factor
        // is piecewise constant between episode edges; the clock is
        // iterated (`now += dt`), so two ticks of guard slack absorb
        // its accumulated rounding, mirroring `Fabric::next_event`.
        let sched = schedule_stable_steps(&self.schedule, now, dt);
        sched.min(self.inner.hint_stable_steps(now, dt))
    }

    fn hint_stable_steps_busy(&self, now: f64, dt: f64, demand_bits: f64) -> u64 {
        // The inner shaper sees the *offered* volume, which equals the
        // caller's demand only while the factor is exactly 1.0; under a
        // degraded ceiling the offer depends on the inner hint, so only
        // the demand-agnostic inner bound is sound there.
        let sched = schedule_stable_steps(&self.schedule, now, dt);
        let inner = if self.schedule.factor_at(self.node, now) >= 1.0 {
            self.inner.hint_stable_steps_busy(now, dt, demand_bits)
        } else {
            self.inner.hint_stable_steps(now, dt)
        };
        sched.min(inner)
    }
}

/// Conservative number of `dt` ticks for which a schedule's rate
/// factors provably cannot change: the distance to the next episode
/// edge, minus two ticks of slack for the iterated (`+= dt`) clock.
fn schedule_stable_steps(schedule: &FaultSchedule, now: f64, dt: f64) -> u64 {
    let t_next = schedule.next_transition_after(now);
    if !t_next.is_finite() {
        return u64::MAX;
    }
    let raw = (t_next - now) / dt;
    if raw <= 3.0 {
        0
    } else {
        (raw.floor() as u64).saturating_sub(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shaper::StaticShaper;
    use crate::units::gbps;

    fn busy_config() -> FaultConfig {
        FaultConfig {
            stall_rate_per_hour: 2.0,
            stall_mean_s: 60.0,
            degrade_rate_per_hour: 3.0,
            degrade_mean_s: 120.0,
            degrade_min_factor: 0.2,
            degrade_max_factor: 0.8,
            loss_rate_per_hour: 1.0,
            loss_mean_s: 30.0,
            loss_frac: 0.3,
            probe_loss_prob: 0.01,
            pair_death_rate_per_hour: 0.0,
        }
    }

    #[test]
    fn rest_across_ceiling_change_matches_idle_loop() {
        // A rest window spanning a degrade episode's start *and* end:
        // the injector's ceiling changes twice mid-window, but idle
        // offered volume is exactly 0.0 under any factor, so the
        // delegated closed-form rest must equal the honest idle loop
        // bitwise — and the very next grants (inside and after the
        // episode) must agree too.
        use crate::shaper::TokenBucket;
        let ep = FaultEpisode {
            node: 0,
            start_s: 2.0,
            end_s: 4.0,
            kind: FaultKind::LinkDegrade,
            rate_factor: 0.3,
        };
        let schedule = FaultSchedule::from_episodes(1, 100.0, [ep]);
        let mk = || {
            FaultInjector::new(
                TokenBucket::sigma_rho(50e9, 1e9, 10e9).with_idle_refill(2e9),
                0,
                schedule.clone(),
            )
        };
        let (mut fast, mut slow) = (mk(), mk());
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 1.0, f64::INFINITY); // drain below the cap
        }
        // 60 idle ticks of 0.1 s from t=1.0: crosses t=2.0 and t=4.0.
        fast.rest(1.0, 0.1, 60);
        let mut t = 1.0;
        for _ in 0..60 {
            slow.transmit(t, 0.1, 0.0);
            t += 0.1;
        }
        assert_eq!(
            fast.token_budget_bits().unwrap().to_bits(),
            slow.token_budget_bits().unwrap().to_bits(),
            "budget diverged across the ceiling change"
        );
        let (gf, gs) = (
            fast.transmit(t, 0.1, f64::INFINITY),
            slow.transmit(t, 0.1, f64::INFINITY),
        );
        assert_eq!(gf.to_bits(), gs.to_bits(), "post-window grant diverged");
        // Same again with the window ending *inside* the episode, so
        // the follow-up grant runs under the degraded ceiling.
        let (mut fast, mut slow) = (mk(), mk());
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 1.0, f64::INFINITY);
        }
        fast.rest(1.0, 0.1, 15); // ends at t=2.5, mid-episode
        let mut t = 1.0;
        for _ in 0..15 {
            slow.transmit(t, 0.1, 0.0);
            t += 0.1;
        }
        let (gf, gs) = (
            fast.transmit(t, 0.1, f64::INFINITY),
            slow.transmit(t, 0.1, f64::INFINITY),
        );
        assert_eq!(gf.to_bits(), gs.to_bits(), "mid-episode grant diverged");
        assert!(gf < 0.3 * 10e9 * 0.1 + 1.0, "degraded ceiling not applied");
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = busy_config();
        let a = FaultSchedule::generate(&cfg, 4, 3600.0 * 24.0, 42);
        let b = FaultSchedule::generate(&cfg, 4, 3600.0 * 24.0, 42);
        assert_eq!(a.timeline(), b.timeline());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = busy_config();
        let a = FaultSchedule::generate(&cfg, 2, 3600.0 * 24.0, 1);
        let b = FaultSchedule::generate(&cfg, 2, 3600.0 * 24.0, 2);
        assert_ne!(a.timeline(), b.timeline());
    }

    #[test]
    fn zero_config_is_empty_and_transparent() {
        let s = FaultSchedule::generate(&FaultConfig::NONE, 3, 3600.0, 7);
        assert!(s.is_empty());
        assert!(FaultConfig::NONE.is_off());
        for t in [0.0, 100.0, 3599.0] {
            assert_eq!(s.factor_at(0, t), 1.0);
            assert!(!s.stalled_at(1, t));
        }
    }

    #[test]
    fn adding_nodes_does_not_perturb_existing_streams() {
        let cfg = busy_config();
        let small = FaultSchedule::generate(&cfg, 2, 86_400.0, 9);
        let large = FaultSchedule::generate(&cfg, 6, 86_400.0, 9);
        assert_eq!(small.node_episodes(0), large.node_episodes(0));
        assert_eq!(small.node_episodes(1), large.node_episodes(1));
    }

    #[test]
    fn arrival_rate_tracks_configuration() {
        let mut cfg = FaultConfig::NONE;
        cfg.stall_rate_per_hour = 6.0;
        cfg.stall_mean_s = 10.0;
        let s = FaultSchedule::generate(&cfg, 1, 3600.0 * 100.0, 5);
        // ~600 expected arrivals over 100 hours; Poisson spread.
        let n = s.node_episodes(0).len();
        assert!(n > 450 && n < 750, "arrivals {n}");
        assert!(s.timeline().iter().all(|e| e.kind == FaultKind::VmStall));
        assert!(s.timeline().iter().all(|e| e.rate_factor == 0.0));
    }

    #[test]
    fn factors_respect_episode_windows() {
        let mut s = FaultSchedule::empty(2, 1000.0);
        let ep = FaultEpisode {
            node: 0,
            start_s: 100.0,
            end_s: 200.0,
            kind: FaultKind::LinkDegrade,
            rate_factor: 0.4,
        };
        s.timeline.push(ep);
        s.per_node[0].push(ep);
        assert_eq!(s.factor_at(0, 99.9), 1.0);
        assert_eq!(s.factor_at(0, 100.0), 0.4);
        assert_eq!(s.factor_at(0, 199.9), 0.4);
        assert_eq!(s.factor_at(0, 200.0), 1.0);
        assert_eq!(s.factor_at(1, 150.0), 1.0);
    }

    #[test]
    fn overlapping_episodes_take_the_minimum_factor() {
        let mut s = FaultSchedule::empty(1, 1000.0);
        for (start, end, factor) in [(0.0, 500.0, 0.5), (100.0, 300.0, 0.2)] {
            let ep = FaultEpisode {
                node: 0,
                start_s: start,
                end_s: end,
                kind: FaultKind::LinkDegrade,
                rate_factor: factor,
            };
            s.timeline.push(ep);
            s.per_node[0].push(ep);
        }
        assert_eq!(s.factor_at(0, 50.0), 0.5);
        assert_eq!(s.factor_at(0, 150.0), 0.2);
        assert_eq!(s.factor_at(0, 400.0), 0.5);
    }

    #[test]
    fn stalled_time_merges_overlaps() {
        let mut s = FaultSchedule::empty(1, 1000.0);
        for (start, end) in [(10.0, 50.0), (40.0, 80.0), (200.0, 210.0)] {
            let ep = FaultEpisode {
                node: 0,
                start_s: start,
                end_s: end,
                kind: FaultKind::VmStall,
                rate_factor: 0.0,
            };
            s.timeline.push(ep);
            s.per_node[0].push(ep);
        }
        assert!((s.stalled_time_s(0) - 80.0).abs() < 1e-9);
        assert!(s.stalled_at(0, 45.0));
        assert!(!s.stalled_at(0, 100.0));
        assert!(s.stall_covering(0, 205.0).is_some());
    }

    #[test]
    fn injector_gates_a_static_shaper() {
        let mut s = FaultSchedule::empty(1, 1000.0);
        let ep = FaultEpisode {
            node: 0,
            start_s: 10.0,
            end_s: 20.0,
            kind: FaultKind::VmStall,
            rate_factor: 0.0,
        };
        s.timeline.push(ep);
        s.per_node[0].push(ep);
        let mut inj = FaultInjector::new(StaticShaper::new(gbps(10.0)), 0, s);
        assert_eq!(inj.transmit(0.0, 1.0, f64::INFINITY), gbps(10.0));
        assert_eq!(inj.transmit(15.0, 1.0, f64::INFINITY), 0.0);
        assert_eq!(inj.rate_hint(15.0), 0.0);
        assert_eq!(inj.transmit(25.0, 1.0, f64::INFINITY), gbps(10.0));
        assert!(inj.token_budget_bits().is_none());
    }

    #[test]
    fn episodes_clip_to_horizon() {
        let mut cfg = FaultConfig::NONE;
        cfg.degrade_rate_per_hour = 50.0;
        cfg.degrade_mean_s = 1e5;
        cfg.degrade_min_factor = 0.5;
        cfg.degrade_max_factor = 0.9;
        let s = FaultSchedule::generate(&cfg, 1, 1000.0, 3);
        assert!(!s.is_empty());
        for e in s.timeline() {
            assert!(e.start_s < 1000.0 && e.end_s <= 1000.0);
            assert!(e.start_s < e.end_s);
            assert!((0.5..=0.9).contains(&e.rate_factor));
        }
    }
}
