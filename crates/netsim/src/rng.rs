//! Deterministic randomness for the simulator.
//!
//! Every stochastic component takes an explicit seed; nothing reads the
//! OS entropy pool or the wall clock. [`SimRng`] wraps an in-house
//! xoshiro256++ generator (seeded through SplitMix64) and adds the
//! distribution samplers the cloud models need (normal, lognormal,
//! Pareto, AR(1) processes). The whole stochastic substrate is std-only:
//! no `rand`, no `rand_distr`, no registry access — part of the
//! hermetic-build policy (see DESIGN.md), because a reproduction of a
//! reproducibility paper whose own build is irreproducible would be
//! self-defeating.
//!
//! Seeds are derived with SplitMix64 so that component seeds produced
//! from a common experiment seed are statistically independent even when
//! the experiment seeds themselves are sequential (0, 1, 2, ...).
//!
//! The generator streams are pinned by golden-vector tests
//! (`tests/golden_rng.rs`): any change to the core or the seeding path
//! is a breaking change to every recorded experiment and must be made
//! deliberately.

/// SplitMix64 step: turns correlated seed inputs into well-mixed outputs.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-seed for a named component from a parent seed.
///
/// `label` should be a stable component identifier (e.g. a node index or
/// a field tag) so that adding components does not perturb the streams of
/// existing ones.
#[inline]
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    splitmix64(parent ^ splitmix64(label.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Deterministic RNG with the samplers used across the simulator.
///
/// The core is xoshiro256++ (Blackman & Vigna): 256 bits of state, a
/// rotate-add output mix, and a period of 2^256 − 1. It is small, fast,
/// and passes BigCrush — more than adequate for a discrete-event
/// simulator, and entirely under this repository's control.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state; never all-zero.
    state: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed (mixed through SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            s = splitmix64(s);
            *word = s;
        }
        // The all-zero state is the one fixed point of the transition;
        // a SplitMix64 chain cannot practically produce it, but guard
        // anyway so every seed yields a working generator.
        if state == [0, 0, 0, 0] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng {
            state,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Fork an independent RNG for a labelled sub-component.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::new(derive_seed(s, label))
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (multiply-shift; bias < n / 2^64,
    /// immaterial at simulation scales).
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate (Box–Muller, cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal variate parameterized by the underlying normal.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed; used for contention burst magnitudes.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// Exponential variate with the given rate (`1/mean`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Poisson variate (Knuth for small means, normal approx for large).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let v = self.normal(mean, mean.sqrt()).round();
            return if v < 0.0 { 0 } else { v as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// First-order autoregressive process: `x_{t+1} = phi * x_t + e`, with
/// `e ~ N(0, sigma^2 * (1 - phi^2))` so the stationary variance is
/// `sigma^2`. Used to give bandwidth noise the sample-to-sample
/// correlation the paper observes (Section 3.1: consecutive 10-second
/// measurements move by up to 33% / 114% but are not independent).
#[derive(Debug, Clone)]
pub struct Ar1 {
    phi: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Create a stationary AR(1) with autocorrelation `phi in (-1, 1)`
    /// and stationary standard deviation `sigma`.
    pub fn new(phi: f64, sigma: f64, rng: &mut SimRng) -> Self {
        assert!(phi.abs() < 1.0, "AR(1) requires |phi| < 1");
        let state = rng.normal(0.0, sigma);
        Ar1 { phi, sigma, state }
    }

    /// Advance one step and return the new value.
    pub fn step(&mut self, rng: &mut SimRng) -> f64 {
        let innovation_sd = self.sigma * (1.0 - self.phi * self.phi).sqrt();
        self.state = self.phi * self.state + rng.normal(0.0, innovation_sd);
        self.state
    }

    /// Current value without advancing.
    pub fn value(&self) -> f64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_seed_decorrelates_sequential_seeds() {
        let s1 = derive_seed(0, 7);
        let s2 = derive_seed(1, 7);
        // Hamming distance should be substantial.
        assert!((s1 ^ s2).count_ones() > 10);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::new(9);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.pareto(1.0, 2.0)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0, "expected a heavy tail, max {max}");
    }

    #[test]
    fn poisson_mean_tracks_parameter() {
        let mut rng = SimRng::new(11);
        let n = 5_000;
        let total: u64 = (0..n).map(|_| rng.poisson(3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ar1_is_stationary_and_correlated() {
        let mut rng = SimRng::new(21);
        let mut ar = Ar1::new(0.8, 1.0, &mut rng);
        let samples: Vec<f64> = (0..50_000).map(|_| ar.step(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        // Lag-1 autocorrelation should be near phi.
        let lag1: f64 = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / ((samples.len() - 1) as f64 * var);
        assert!((lag1 - 0.8).abs() < 0.05, "lag1 {lag1}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(3);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let matches = (0..64).filter(|_| a.uniform() == b.uniform()).count();
        assert!(matches < 4);
    }
}
