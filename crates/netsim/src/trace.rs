//! Measurement traces produced by the simulated harness.
//!
//! The paper summarizes "performability metrics (bandwidth,
//! retransmissions, CPU load etc.) every 10 seconds" — [`BandwidthTrace`]
//! mirrors that: a sequence of fixed-interval [`BwSample`]s. Packet-level
//! RTT observations (Figures 7, 8, 12) are recorded in [`RttTrace`].

/// One summarization interval of a bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwSample {
    /// Interval start, seconds since experiment start.
    pub t: f64,
    /// Achieved goodput over the interval, bits/second.
    ///
    /// Intervals in which the traffic pattern was idle for their whole
    /// duration are *not* recorded (iperf reports nothing while idle), so
    /// this averages over transmitting time only.
    pub bandwidth_bps: f64,
    /// Bits transferred during the interval.
    pub bits: f64,
    /// TCP segments retransmitted during the interval.
    pub retransmissions: u64,
}

/// A fixed-interval bandwidth trace (the paper's 10-second summaries).
#[derive(Debug, Clone, Default)]
pub struct BandwidthTrace {
    /// Summarization interval in seconds (10.0 throughout the paper).
    pub interval: f64,
    /// Ordered samples.
    pub samples: Vec<BwSample>,
}

impl BandwidthTrace {
    /// New empty trace with the given summarization interval.
    pub fn new(interval: f64) -> Self {
        BandwidthTrace {
            interval,
            samples: Vec::new(),
        }
    }

    /// Bandwidth values (bits/s) of all samples, in time order.
    pub fn bandwidths(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.bandwidth_bps).collect()
    }

    /// Total bits transferred.
    pub fn total_bits(&self) -> f64 {
        self.samples.iter().map(|s| s.bits).sum()
    }

    /// Total retransmissions.
    pub fn total_retransmissions(&self) -> u64 {
        self.samples.iter().map(|s| s.retransmissions).sum()
    }

    /// Mean of the per-interval bandwidths (bits/s).
    pub fn mean_bandwidth(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.bandwidth_bps).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest relative sample-to-sample swing,
    /// `|b_{i+1} - b_i| / min(b_i, b_{i+1})`, as a fraction.
    ///
    /// Section 3.1 reports swings up to 33% (HPCCloud full-speed) and
    /// 114% (Google Cloud 5-30) between consecutive 10-second samples.
    pub fn max_consecutive_swing(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| {
                let lo = w[0].bandwidth_bps.min(w[1].bandwidth_bps);
                if lo <= 0.0 {
                    0.0
                } else {
                    (w[1].bandwidth_bps - w[0].bandwidth_bps).abs() / lo
                }
            })
            .fold(0.0, f64::max)
    }

    /// Cumulative traffic curve: `(t, total bits transferred by t)`,
    /// one point per sample (Figure 10).
    pub fn cumulative_traffic(&self) -> Vec<(f64, f64)> {
        let mut acc = 0.0;
        self.samples
            .iter()
            .map(|s| {
                acc += s.bits;
                (s.t, acc)
            })
            .collect()
    }

    /// Render the trace as CSV (`t_s,bandwidth_bps,bits,retransmissions`
    /// header + one row per sample) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,bandwidth_bps,bits,retransmissions\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{}\n",
                s.t, s.bandwidth_bps, s.bits, s.retransmissions
            ));
        }
        out
    }
}

/// Packet-level round-trip-time observations from one stream.
#[derive(Debug, Clone, Default)]
pub struct RttTrace {
    /// `(send time s, rtt s)` per sampled segment, time ordered.
    pub samples: Vec<(f64, f64)>,
}

impl RttTrace {
    /// RTT values in seconds.
    pub fn rtts(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, r)| r).collect()
    }

    /// Render as CSV (`t_s,rtt_s`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,rtt_s\n");
        for &(t, r) in &self.samples {
            out.push_str(&format!("{t},{r}\n"));
        }
        out
    }

    /// Mean RTT in seconds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, r)| r).sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum RTT in seconds.
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, bw: f64) -> BwSample {
        BwSample {
            t,
            bandwidth_bps: bw,
            bits: bw * 10.0,
            retransmissions: 3,
        }
    }

    #[test]
    fn totals() {
        let mut tr = BandwidthTrace::new(10.0);
        tr.samples.push(sample(0.0, 1e9));
        tr.samples.push(sample(10.0, 2e9));
        assert_eq!(tr.total_bits(), 3e10);
        assert_eq!(tr.total_retransmissions(), 6);
        assert_eq!(tr.mean_bandwidth(), 1.5e9);
    }

    #[test]
    fn swing() {
        let mut tr = BandwidthTrace::new(10.0);
        tr.samples.push(sample(0.0, 1e9));
        tr.samples.push(sample(10.0, 2e9)); // +100% relative to min
        tr.samples.push(sample(20.0, 1.8e9));
        assert!((tr.max_consecutive_swing() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_is_monotone() {
        let mut tr = BandwidthTrace::new(10.0);
        for i in 0..5 {
            tr.samples.push(sample(i as f64 * 10.0, 1e9));
        }
        let cum = tr.cumulative_traffic();
        assert_eq!(cum.len(), 5);
        assert!(cum.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(cum.last().unwrap().1, 5e10);
    }

    #[test]
    fn rtt_trace_stats() {
        let tr = RttTrace {
            samples: vec![(0.0, 0.001), (0.1, 0.003), (0.2, 0.002)],
        };
        assert!((tr.mean() - 0.002).abs() < 1e-12);
        assert_eq!(tr.max(), 0.003);
        assert_eq!(tr.rtts().len(), 3);
    }

    #[test]
    fn csv_exports() {
        let mut tr = BandwidthTrace::new(10.0);
        tr.samples.push(sample(0.0, 1e9));
        let csv = tr.to_csv();
        assert!(csv.starts_with("t_s,bandwidth_bps,bits,retransmissions\n"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("0,1000000000,10000000000,3"));

        let rt = RttTrace {
            samples: vec![(0.5, 0.002)],
        };
        let csv = rt.to_csv();
        assert!(csv.starts_with("t_s,rtt_s\n"));
        assert!(csv.contains("0.5,0.002"));
    }

    #[test]
    fn empty_traces_are_safe() {
        let tr = BandwidthTrace::new(10.0);
        assert_eq!(tr.mean_bandwidth(), 0.0);
        assert_eq!(tr.max_consecutive_swing(), 0.0);
        assert!(tr.cumulative_traffic().is_empty());
        let rt = RttTrace::default();
        assert_eq!(rt.mean(), 0.0);
        assert_eq!(rt.max(), 0.0);
    }
}
