//! Unit conventions and conversion helpers.
//!
//! The simulator uses plain `f64` quantities with fixed conventions:
//!
//! * **rates** are bits per second (`bps`),
//! * **data volumes** are bits unless a name says `bytes`,
//! * **time** is seconds,
//! * **latency** is seconds (helpers convert to milliseconds for reports).
//!
//! The helpers below exist so call sites read like the paper:
//! `gbps(10.0)`, `gbit(5000.0)` (a token-bucket budget), `mb(128.0)`.

/// Bits per second from gigabits per second.
#[inline]
pub fn gbps(v: f64) -> f64 {
    v * 1e9
}

/// Bits per second from megabits per second.
#[inline]
pub fn mbps(v: f64) -> f64 {
    v * 1e6
}

/// Bits from gigabits (the paper reports token budgets in Gbit).
#[inline]
pub fn gbit(v: f64) -> f64 {
    v * 1e9
}

/// Bits from megabits.
#[inline]
pub fn mbit(v: f64) -> f64 {
    v * 1e6
}

/// Bits from bytes.
#[inline]
pub fn bytes(v: f64) -> f64 {
    v * 8.0
}

/// Bits from kibibytes (e.g. `write()` sizes: `kib(128.0)` = 128 KiB).
#[inline]
pub fn kib(v: f64) -> f64 {
    v * 8.0 * 1024.0
}

/// Bits from mebibytes.
#[inline]
pub fn mib(v: f64) -> f64 {
    v * 8.0 * 1024.0 * 1024.0
}

/// Bits from gigabytes (decimal, as used for data-set sizes).
#[inline]
pub fn gb(v: f64) -> f64 {
    v * 8e9
}

/// Bits from terabytes (decimal).
#[inline]
pub fn tb(v: f64) -> f64 {
    v * 8e12
}

/// Gigabits-per-second readout from a bits-per-second value.
#[inline]
pub fn as_gbps(bits_per_sec: f64) -> f64 {
    bits_per_sec / 1e9
}

/// Megabits-per-second readout from a bits-per-second value.
#[inline]
pub fn as_mbps(bits_per_sec: f64) -> f64 {
    bits_per_sec / 1e6
}

/// Gigabit readout from a bits value.
#[inline]
pub fn as_gbit(bits: f64) -> f64 {
    bits / 1e9
}

/// Terabyte (decimal) readout from a bits value.
#[inline]
pub fn as_tb(bits: f64) -> f64 {
    bits / 8e12
}

/// Milliseconds from seconds (latency reporting).
#[inline]
pub fn as_ms(seconds: f64) -> f64 {
    seconds * 1e3
}

/// Seconds from milliseconds.
#[inline]
pub fn ms(v: f64) -> f64 {
    v * 1e-3
}

/// Seconds from microseconds.
#[inline]
pub fn us(v: f64) -> f64 {
    v * 1e-6
}

/// Seconds from minutes.
#[inline]
pub fn minutes(v: f64) -> f64 {
    v * 60.0
}

/// Seconds from hours.
#[inline]
pub fn hours(v: f64) -> f64 {
    v * 3600.0
}

/// Seconds from days.
#[inline]
pub fn days(v: f64) -> f64 {
    v * 86_400.0
}

/// One week in seconds — the duration of the paper's per-pair experiments.
pub const WEEK: f64 = 7.0 * 86_400.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_roundtrip() {
        assert_eq!(as_gbps(gbps(10.0)), 10.0);
        assert_eq!(as_mbps(mbps(250.0)), 250.0);
        assert_eq!(as_gbit(gbit(5000.0)), 5000.0);
    }

    #[test]
    fn byte_conversions() {
        assert_eq!(bytes(1.0), 8.0);
        assert_eq!(kib(1.0), 8192.0);
        assert_eq!(mib(1.0), 8.0 * 1024.0 * 1024.0);
        assert_eq!(gb(1.0), 8e9);
        assert_eq!(as_tb(tb(9.0)), 9.0);
    }

    #[test]
    fn time_conversions() {
        assert_eq!(minutes(2.0), 120.0);
        assert_eq!(hours(1.0), 3600.0);
        assert_eq!(days(7.0), WEEK);
        assert_eq!(as_ms(ms(2.3)), 2.3);
        assert!((us(500.0) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn transfer_volume_of_a_week_at_10gbps_is_petabyte_scale() {
        // The paper transferred >9 PB across all experiments; one week of
        // one 10 Gbps pair is ~0.75 PB, so ~12 pair-weeks reach 9 PB.
        let bits = gbps(10.0) * WEEK;
        let pb = bits / 8e15;
        assert!(pb > 0.7 && pb < 0.8, "got {pb}");
    }
}
