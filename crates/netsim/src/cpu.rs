//! CPU-credit model for burstable instances (extension).
//!
//! Section 4.2 closes with: "Others have shown that cloud providers use
//! token buckets for other resources such as CPU scheduling [Wang et
//! al.]. This affects cloud-based experimentation, as the state of
//! these token buckets is not directly visible to users, nor are their
//! budgets or refill policies." This module implements that resource:
//! the EC2 t2/t3-style **CPU credit** scheme.
//!
//! * A vCPU earns credits at a fixed rate (`earn_rate` credits/hour);
//!   one credit buys one vCPU-minute at 100% utilization.
//! * While credits remain (or within the baseline), the instance runs
//!   at full speed; once the balance empties, it is throttled to the
//!   **baseline fraction** (e.g. t2.micro: 10%).
//! * Credits accrue while the CPU idles, up to a cap — exactly the
//!   budget/refill/cap structure of the network bucket, so the same
//!   experimental pathologies (runs coupled through hidden state,
//!   budget-dependent runtimes) appear on the compute axis.
//!
//! [`CpuCredits::run`] answers the engine's question directly: "how
//! long does `work` seconds of full-speed computation take, starting
//! from the current credit state?"

/// CPU credit state for one instance.
///
/// ```
/// use netsim::cpu::CpuCredits;
///
/// let mut c = CpuCredits::new(2, 0.3, 10.0, 100.0);
/// // 600 credit-seconds buy ~428 s of full-speed dual-vCPU work;
/// // everything beyond runs at the 30% baseline.
/// let wall = c.run(1000.0);
/// assert!(wall > 1000.0);
/// c.idle(3600.0); // resting earns credits back
/// assert!(c.balance_credits() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CpuCredits {
    /// Number of vCPUs.
    vcpus: f64,
    /// Baseline utilization fraction per vCPU (0, 1].
    baseline: f64,
    /// Current credit balance, in vCPU-seconds of full-speed work
    /// *above baseline*.
    balance_s: f64,
    /// Maximum balance.
    cap_s: f64,
    /// Initial balance (for reset).
    initial_s: f64,
}

impl CpuCredits {
    /// Create a credit state.
    ///
    /// * `vcpus` — vCPU count.
    /// * `baseline` — baseline utilization fraction (t3.large: 0.3).
    /// * `initial_credits` / `cap_credits` — in vCPU-minutes (the AWS
    ///   unit: 1 credit = 1 vCPU-minute at 100%).
    pub fn new(vcpus: u32, baseline: f64, initial_credits: f64, cap_credits: f64) -> Self {
        assert!(vcpus >= 1, "need at least one vCPU");
        assert!(baseline > 0.0 && baseline <= 1.0, "baseline must be in (0, 1]");
        assert!(
            initial_credits >= 0.0 && cap_credits >= initial_credits,
            "credit balance must fit under the cap"
        );
        CpuCredits {
            vcpus: vcpus as f64,
            baseline,
            balance_s: initial_credits * 60.0,
            cap_s: cap_credits * 60.0,
            initial_s: initial_credits * 60.0,
        }
    }

    /// A t3.large-style profile: 2 vCPU, 30% baseline, 24-hour credit
    /// cap (576 credits), starting with half the cap.
    pub fn t3_large() -> Self {
        CpuCredits::new(2, 0.30, 288.0, 576.0)
    }

    /// An unlimited (non-burstable) instance: never throttles.
    pub fn unlimited(vcpus: u32) -> Self {
        CpuCredits::new(vcpus, 1.0, 0.0, 0.0)
    }

    /// Current balance in credits (vCPU-minutes).
    pub fn balance_credits(&self) -> f64 {
        self.balance_s / 60.0
    }

    /// Baseline fraction.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Earn rate while running *at* baseline: zero net; while idle, the
    /// baseline allocation accrues as credits (AWS semantics: credits
    /// earned continuously at the baseline rate, spent at the usage
    /// rate; net = baseline − usage).
    fn earn_rate_s_per_s(&self) -> f64 {
        self.vcpus * self.baseline
    }

    /// Advance `dt` seconds of idleness (credits accrue).
    pub fn idle(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time cannot run backwards");
        if self.baseline >= 1.0 {
            return;
        }
        self.balance_s = (self.balance_s + self.earn_rate_s_per_s() * dt).min(self.cap_s);
    }

    /// Execute `work_s` seconds of full-speed CPU work (all vCPUs busy)
    /// and return the wall-clock time it takes from the current state.
    ///
    /// While credits last the work runs at full speed (spending
    /// `vcpus·(1−baseline)` credit-seconds per wall second); once the
    /// balance hits zero the instance drops to the baseline fraction
    /// and the remaining work takes `1/baseline` times longer.
    pub fn run(&mut self, work_s: f64) -> f64 {
        assert!(work_s >= 0.0, "work time must be non-negative");
        if self.baseline >= 1.0 {
            return work_s;
        }
        let spend_rate = self.vcpus * (1.0 - self.baseline); // credit-s per wall-s
        let mut remaining = work_s;
        let mut wall = 0.0;

        if self.balance_s > 0.0 && spend_rate > 0.0 {
            // Wall time until the balance empties at full speed.
            let t_empty = self.balance_s / spend_rate;
            let t_full = remaining.min(t_empty);
            wall += t_full;
            remaining -= t_full;
            self.balance_s = (self.balance_s - t_full * spend_rate).max(0.0);
        }
        if remaining > 0.0 {
            // Throttled: each wall second does `baseline` of work.
            wall += remaining / self.baseline;
        }
        wall
    }

    /// Restore the initial balance (fresh instance).
    pub fn reset(&mut self) {
        self.balance_s = self.initial_s;
    }

    /// Wall time `work_s` would take without mutating state.
    pub fn preview(&self, work_s: f64) -> f64 {
        self.clone().run(work_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_throttles() {
        let mut c = CpuCredits::unlimited(4);
        assert_eq!(c.run(1000.0), 1000.0);
        c.idle(1000.0);
        assert_eq!(c.run(1000.0), 1000.0);
    }

    #[test]
    fn full_speed_while_credits_last_then_baseline() {
        // 2 vCPU, 30% baseline, 10 credits = 600 credit-seconds.
        let mut c = CpuCredits::new(2, 0.3, 10.0, 100.0);
        // Spend rate = 2·0.7 = 1.4 credit-s per wall-s → empties after
        // ~428.6 s of full-speed work.
        let wall = c.run(1000.0);
        let t_full = 600.0 / 1.4;
        let expected = t_full + (1000.0 - t_full) / 0.3;
        assert!((wall - expected).abs() < 1e-6, "wall {wall} vs {expected}");
        assert!(c.balance_credits() < 1e-9);
    }

    #[test]
    fn short_work_is_unaffected() {
        let mut c = CpuCredits::t3_large();
        let wall = c.run(60.0);
        assert!((wall - 60.0).abs() < 1e-9);
        assert!(c.balance_credits() < 288.0);
    }

    #[test]
    fn idle_earns_credits_up_to_cap() {
        let mut c = CpuCredits::new(2, 0.3, 0.0, 10.0);
        // Earn rate = 0.6 credit-s per s → 600 s of idle = 6 credits.
        c.idle(600.0);
        assert!((c.balance_credits() - 6.0).abs() < 1e-9);
        c.idle(1e9);
        assert!((c.balance_credits() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depleted_instance_runs_at_baseline_exactly() {
        let mut c = CpuCredits::new(1, 0.25, 0.0, 100.0);
        let wall = c.run(25.0);
        assert!((wall - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reset_and_preview() {
        let mut c = CpuCredits::new(2, 0.3, 10.0, 100.0);
        let w1 = c.preview(1000.0);
        let w2 = c.run(1000.0);
        assert_eq!(w1, w2);
        assert!(c.balance_credits() < 1e-9);
        c.reset();
        assert!((c.balance_credits() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn consecutive_runs_couple_through_credit_state() {
        // The paper's point, on the CPU axis: back-to-back experiments
        // slow down as hidden credits deplete.
        let mut c = CpuCredits::new(2, 0.3, 30.0, 576.0);
        let mut walls = Vec::new();
        for _ in 0..5 {
            walls.push(c.run(600.0));
            c.idle(60.0);
        }
        assert!(walls[0] < walls[4], "{walls:?}");
        // And resting long enough restores performance.
        c.idle(6.0 * 3600.0);
        let rested = c.run(600.0);
        assert!(rested < walls[4]);
    }
}
