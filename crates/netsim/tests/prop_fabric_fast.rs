//! Fast-path equivalence suite (DESIGN.md §9).
//!
//! The fabric's stepping fast path (scratch buffers, incremental
//! active-flow counts, signature-keyed rate cache, closed-form shaper
//! rests) must be **bit-identical** to the reference loops — not merely
//! close. These properties drive randomized scripts (mixed shaper
//! kinds, random flow sets, fault schedules, core capacities, drain and
//! rest windows) through a fast fabric and a `force_reference_path`
//! twin, comparing every observable with `f64::to_bits` after every
//! step; plus exact closed-form-`rest`-vs-idle-loop tests for every
//! shaper implementation.

use netsim::fabric::{Fabric, FlowId, FlowSpec};
use netsim::faults::{FaultConfig, FaultInjector, FaultSchedule};
use netsim::rng::SimRng;
use netsim::shaper::{
    EmpiricalShaper, MinShaper, NoiseConfig, NoiseShaper, PerCoreQos, PerCoreQosConfig,
    QuantileDist, Shaper, StaticShaper, TokenBucket,
};
use proplite::prelude::*;

/// One of the shaper kinds the fabric is exercised with. Construction
/// is a pure function of `(kind, seed)` so the fast and reference
/// fabrics get bitwise-identical twins.
fn make_shaper(kind: usize, seed: u64) -> Box<dyn Shaper + Send> {
    match kind % 5 {
        0 => Box::new(TokenBucket::sigma_rho(
            40e9 + (seed % 7) as f64 * 10e9,
            1e9,
            10e9,
        )),
        1 => Box::new(PerCoreQos::new(PerCoreQosConfig::gce(4), seed)),
        2 => Box::new(NoiseShaper::new(NoiseConfig::hpccloud(), seed)),
        3 => Box::new(StaticShaper::new(5e9 + (seed % 5) as f64 * 1e9)),
        _ => Box::new(MinShaper::new(
            TokenBucket::sigma_rho(60e9, 2e9, 8e9).with_idle_refill(4e9),
            StaticShaper::new(9e9),
        )),
    }
}

type DynFabric = Fabric<Box<dyn Shaper + Send>>;

/// Build the fast fabric and its reference-path twin from the same
/// construction script.
fn build_pair(
    kinds: &[usize],
    seed: u64,
    with_faults: bool,
    core_gbps: Option<f64>,
) -> (DynFabric, DynFabric) {
    let build = || {
        let mut f: DynFabric = Fabric::new();
        for (v, &k) in kinds.iter().enumerate() {
            f.add_node(make_shaper(k, seed ^ v as u64), 10e9);
        }
        if with_faults {
            let cfg = FaultConfig {
                stall_rate_per_hour: 30.0,
                stall_mean_s: 4.0,
                degrade_rate_per_hour: 60.0,
                degrade_mean_s: 8.0,
                degrade_min_factor: 0.2,
                degrade_max_factor: 0.8,
                loss_rate_per_hour: 20.0,
                loss_mean_s: 3.0,
                loss_frac: 0.3,
                probe_loss_prob: 0.0,
                pair_death_rate_per_hour: 0.0,
            };
            f.set_fault_schedule(FaultSchedule::generate(&cfg, kinds.len(), 600.0, seed));
        }
        if let Some(g) = core_gbps {
            f.set_core_capacity(g * 1e9);
        }
        f
    };
    let fast = build();
    let mut reference = build();
    reference.force_reference_path(true);
    (fast, reference)
}

/// Compare every observable of the two fabrics bitwise.
fn assert_fabrics_bit_equal(fast: &DynFabric, reference: &DynFabric, flows: &[FlowId], ctx: &str) {
    assert_eq!(
        fast.now().to_bits(),
        reference.now().to_bits(),
        "clock diverged ({ctx})"
    );
    assert_eq!(fast.active_flows(), reference.active_flows(), "flow count ({ctx})");
    for v in 0..fast.node_count() {
        assert_eq!(
            fast.node_last_tx_bits(v).to_bits(),
            reference.node_last_tx_bits(v).to_bits(),
            "node {v} last_tx ({ctx})"
        );
        assert_eq!(
            fast.node_total_tx_bits(v).to_bits(),
            reference.node_total_tx_bits(v).to_bits(),
            "node {v} total_tx ({ctx})"
        );
        let bf = fast.node_shaper(v).token_budget_bits().map(f64::to_bits);
        let br = reference.node_shaper(v).token_budget_bits().map(f64::to_bits);
        assert_eq!(bf, br, "node {v} token budget ({ctx})");
    }
    for &id in flows {
        assert_eq!(
            fast.flow_remaining_bits(id).map(f64::to_bits),
            reference.flow_remaining_bits(id).map(f64::to_bits),
            "flow {id:?} remaining ({ctx})"
        );
        assert_eq!(
            fast.flow_last_rate(id).map(f64::to_bits),
            reference.flow_last_rate(id).map(f64::to_bits),
            "flow {id:?} last rate ({ctx})"
        );
    }
}

/// Drive both fabrics through an identical randomized script: flow
/// arrivals, stepping at a mixed cadence, occasional full drains and
/// rest windows. Compares bitwise after every single step.
fn run_script(
    fast: &mut DynFabric,
    reference: &mut DynFabric,
    script_seed: u64,
    steps: usize,
    dt: f64,
) {
    let mut rng = SimRng::new(script_seed);
    let mut all_flows: Vec<FlowId> = Vec::new();
    let n = fast.node_count();
    for i in 0..steps {
        // Poisson-ish arrivals: up to 3 new flows per tick.
        if rng.chance(0.4) {
            for _ in 0..rng.index(3) + 1 {
                let src = rng.index(n);
                let dst = (src + 1 + rng.index(n - 1)) % n;
                let bits = rng.uniform_in(5e8, 2e10);
                let mut spec = FlowSpec::new(src, dst, bits);
                if rng.chance(0.3) {
                    spec.max_rate_bps = rng.uniform_in(5e8, 6e9);
                }
                let a = fast.start_flow(spec);
                let b = reference.start_flow(spec);
                assert_eq!(a, b, "flow ids diverged");
                all_flows.push(a);
            }
        }
        let ca = fast.step(dt);
        let cb = reference.step(dt);
        assert_eq!(ca, cb, "completions diverged at step {i}");
        assert_fabrics_bit_equal(fast, reference, &all_flows, &format!("step {i}"));

        // Occasionally drain everything and rest, exercising the
        // closed-form shaper rests against the reference idle loop.
        if rng.chance(0.02) {
            let mut guard = 0;
            while fast.active_flows() > 0 {
                let ca = fast.step(dt);
                let cb = reference.step(dt);
                assert_eq!(ca, cb, "drain completions diverged");
                guard += 1;
                assert!(guard < 2_000_000, "drain did not terminate");
            }
            while reference.active_flows() > 0 {
                reference.step(dt);
            }
            assert_fabrics_bit_equal(fast, reference, &all_flows, "after drain");
            let window = rng.uniform_in(1.0, 40.0);
            fast.rest(window, dt);
            reference.rest(window, dt);
            assert_fabrics_bit_equal(fast, reference, &all_flows, "after rest");
        }
    }
}

prop_cases! {
    #![config(Config::with_cases(24))]

    /// The flagship property: mixed shapers, random flows, faults and
    /// core capacity on or off — every observable bitwise equal between
    /// the fast and reference paths at every step.
    #[test]
    fn fast_path_is_bit_identical(
        seed in 0u64..100_000,
        n_nodes in 2usize..7,
        with_faults in bools(),
        with_core in bools(),
        dt_ms in 50u64..500,
    ) {
        let mut rng = SimRng::new(seed ^ 0xFAB);
        let kinds: Vec<usize> = (0..n_nodes).map(|_| rng.index(5)).collect();
        let core = if with_core { Some(12.0) } else { None };
        let (mut fast, mut reference) = build_pair(&kinds, seed, with_faults, core);
        run_script(&mut fast, &mut reference, seed ^ 0x5C817, 120, dt_ms as f64 / 1000.0);
    }

    /// Mid-script reconfiguration (core capacity toggles, fault
    /// schedule clears, resets) must invalidate the rate cache — the
    /// twin comparison catches any stale reuse.
    #[test]
    fn fast_path_survives_reconfiguration(seed in 0u64..100_000) {
        let kinds = [0usize, 1, 3, 4];
        let (mut fast, mut reference) = build_pair(&kinds, seed, false, None);
        run_script(&mut fast, &mut reference, seed, 40, 0.1);
        for f in [&mut fast, &mut reference] {
            f.set_core_capacity(9e9);
        }
        run_script(&mut fast, &mut reference, seed ^ 1, 40, 0.1);
        for f in [&mut fast, &mut reference] {
            f.clear_core_capacity();
        }
        run_script(&mut fast, &mut reference, seed ^ 2, 40, 0.1);
        for f in [&mut fast, &mut reference] {
            f.reset();
        }
        assert_fabrics_bit_equal(&fast, &reference, &[], "after reset");
        run_script(&mut fast, &mut reference, seed ^ 3, 40, 0.1);
    }

    /// Closed-form `TokenBucket::rest` equals the idle-transmit loop
    /// bitwise, from any starting budget, including saturation.
    #[test]
    fn token_bucket_rest_is_exact(
        start_frac in 0.0f64..1.0,
        steps in 0u64..5_000,
        dt_ms in 10u64..2_000,
        idle_gbps in 0.0f64..20.0,
    ) {
        let dt = dt_ms as f64 / 1000.0;
        let mut fast = TokenBucket::sigma_rho(50e9, 1e9, 10e9).with_idle_refill(idle_gbps * 1e9);
        fast.set_budget_bits(50e9 * start_frac);
        let mut slow = fast.clone();
        fast.rest(3.0, dt, steps);
        let mut t = 3.0;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        prop_assert_eq!(fast.budget_bits().to_bits(), slow.budget_bits().to_bits());
        let gf = fast.transmit(t, 1.0, f64::INFINITY);
        let gs = slow.transmit(t, 1.0, f64::INFINITY);
        prop_assert_eq!(gf.to_bits(), gs.to_bits());
    }

    /// `PerCoreQos::rest` (burst marker clear + N noise advances)
    /// equals the idle loop bitwise, including the RNG stream.
    #[test]
    fn per_core_rest_is_exact(seed in 0u64..10_000, steps in 0u64..2_000) {
        let mut fast = PerCoreQos::new(PerCoreQosConfig::gce(8), seed);
        let mut slow = PerCoreQos::new(PerCoreQosConfig::gce(8), seed);
        // Enter a burst first so the idle transition is exercised.
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 0.1, f64::INFINITY);
        }
        fast.rest(0.1, 0.1, steps);
        let mut t = 0.1;
        for _ in 0..steps {
            slow.transmit(t, 0.1, 0.0);
            t += 0.1;
        }
        // Subsequent bursts sample the ramp penalty from the RNG: any
        // stream divergence shows up in the grants.
        for k in 0..20 {
            let tt = t + k as f64 * 0.1;
            let gf = fast.transmit(tt, 0.1, f64::INFINITY);
            let gs = slow.transmit(tt, 0.1, f64::INFINITY);
            prop_assert_eq!(gf.to_bits(), gs.to_bits(), "burst step {}", k);
        }
    }

    /// Default-impl shapers (noise, empirical) and the composite /
    /// wrapper shapers: `rest` equals the idle loop bitwise.
    #[test]
    fn remaining_shapers_rest_is_exact(seed in 0u64..10_000, steps in 0u64..1_500) {
        let dt = 0.1;
        // NoiseShaper (default loop impl — trivially equal, but pins
        // the trait plumbing).
        let mut fast = NoiseShaper::new(NoiseConfig::hpccloud(), seed);
        let mut slow = NoiseShaper::new(NoiseConfig::hpccloud(), seed);
        fast.rest(0.0, dt, steps);
        let mut t = 0.0;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        let (gf, gs) = (fast.transmit(t, dt, f64::INFINITY), slow.transmit(t, dt, f64::INFINITY));
        prop_assert_eq!(gf.to_bits(), gs.to_bits(), "noise");

        // EmpiricalShaper resamples on a wall of simulated time.
        let dist = QuantileDist::from_box(1e8, 3e8, 5e8, 7e8, 9e8);
        let mut fast = EmpiricalShaper::new(dist.clone(), 5.0, seed);
        let mut slow = EmpiricalShaper::new(dist, 5.0, seed);
        fast.rest(0.0, dt, steps);
        let mut t = 0.0;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        let (gf, gs) = (fast.transmit(t, dt, f64::INFINITY), slow.transmit(t, dt, f64::INFINITY));
        prop_assert_eq!(gf.to_bits(), gs.to_bits(), "empirical");

        // StaticShaper: rest is a no-op; grants unchanged.
        let mut st = StaticShaper::new(7e9);
        st.rest(0.0, dt, steps);
        prop_assert_eq!(st.transmit(0.0, 1.0, f64::INFINITY).to_bits(), 7e9f64.to_bits());

        // MinShaper: stage-wise rest equals the composed idle loop.
        let mk = || MinShaper::new(
            TokenBucket::sigma_rho(20e9, 1e9, 10e9).with_idle_refill(2e9),
            StaticShaper::new(8e9),
        );
        let (mut fast, mut slow) = (mk(), mk());
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 1.0, f64::INFINITY); // partially drain
        }
        fast.rest(1.0, dt, steps);
        let mut t = 1.0;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        prop_assert_eq!(
            fast.token_budget_bits().unwrap().to_bits(),
            slow.token_budget_bits().unwrap().to_bits(),
            "min shaper budget"
        );
        let (gf, gs) = (fast.transmit(t, dt, f64::INFINITY), slow.transmit(t, dt, f64::INFINITY));
        prop_assert_eq!(gf.to_bits(), gs.to_bits(), "min shaper grant");

        // Boxed dyn shaper forwards to the override.
        let mut fast: Box<dyn Shaper + Send> = Box::new(TokenBucket::sigma_rho(30e9, 1e9, 10e9));
        let mut slow: Box<dyn Shaper + Send> = Box::new(TokenBucket::sigma_rho(30e9, 1e9, 10e9));
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 2.0, f64::INFINITY);
        }
        fast.rest(2.0, dt, steps);
        let mut t = 2.0;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        prop_assert_eq!(
            fast.token_budget_bits().unwrap().to_bits(),
            slow.token_budget_bits().unwrap().to_bits(),
            "boxed budget"
        );

        // FaultInjector: idle offered volume is exactly zero whatever
        // the fault factor, so rest delegates to the inner shaper.
        let cfg = FaultConfig {
            stall_rate_per_hour: 120.0,
            stall_mean_s: 5.0,
            degrade_rate_per_hour: 120.0,
            degrade_mean_s: 10.0,
            degrade_min_factor: 0.1,
            degrade_max_factor: 0.9,
            loss_rate_per_hour: 60.0,
            loss_mean_s: 4.0,
            loss_frac: 0.5,
            probe_loss_prob: 0.0,
            pair_death_rate_per_hour: 0.0,
        };
        let schedule = FaultSchedule::generate(&cfg, 1, 1000.0, seed);
        let mk = || FaultInjector::new(
            TokenBucket::sigma_rho(25e9, 1e9, 10e9),
            0,
            schedule.clone(),
        );
        let (mut fast, mut slow) = (mk(), mk());
        for s in [&mut fast, &mut slow] {
            s.transmit(0.0, 1.5, f64::INFINITY);
        }
        fast.rest(1.5, dt, steps);
        let mut t = 1.5;
        for _ in 0..steps {
            slow.transmit(t, dt, 0.0);
            t += dt;
        }
        prop_assert_eq!(
            fast.token_budget_bits().unwrap().to_bits(),
            slow.token_budget_bits().unwrap().to_bits(),
            "fault injector budget"
        );
        let (gf, gs) = (fast.transmit(t, dt, f64::INFINITY), slow.transmit(t, dt, f64::INFINITY));
        prop_assert_eq!(gf.to_bits(), gs.to_bits(), "fault injector grant");
    }

    /// The cache must actually fire on cache-friendly workloads — a
    /// steady flow set over token buckets recomputes only when a hint
    /// flips, not every tick.
    #[test]
    fn rate_cache_hits_on_steady_state(seed in 0u64..10_000) {
        let kinds = [0usize, 0, 0, 0];
        let (mut fast, _) = build_pair(&kinds, seed, false, None);
        let id = fast.start_flow(FlowSpec::new(0, 1, 1e12));
        for _ in 0..500 {
            fast.step(0.1);
        }
        let perf = fast.perf();
        assert!(perf.rate_cache_hits > 400, "cache never engaged: {perf:?}");
        assert!(perf.rate_recomputes < 50, "recomputing every tick: {perf:?}");
        assert!(fast.flow_remaining_bits(id).is_some());
    }
}
