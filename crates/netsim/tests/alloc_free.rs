//! Counting-allocator probe: the fabric's steady-state stepping path
//! performs **zero** heap allocations (ISSUE 5 acceptance criterion).
//!
//! A thread-local counter wrapped around the system allocator counts
//! every `alloc`/`realloc`/`alloc_zeroed` on this thread. After a
//! warm-up that grows the scratch buffers to their high-water mark,
//! stepping — on cache hits, on forced recomputes, and through rest
//! windows — must not touch the heap at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use netsim::fabric::{Fabric, FlowSpec};
use netsim::shaper::{Shaper, StaticShaper, TokenBucket};

struct CountingAlloc;

thread_local! {
    // const-init so reading the counter never allocates lazily.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: the allocator may be called during TLS teardown.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// Run `f` inside its own counter epoch and return the number of
/// allocations it performed. Each measured section gets an independent
/// epoch — a snapshot at entry and a delta at exit — so probing one
/// stepping path can never hide (or get blamed for) allocations from
/// another path's warm-up or measurement.
fn measured<F: FnOnce()>(f: F) -> u64 {
    let before = allocs();
    f();
    allocs() - before
}

#[test]
fn steady_state_stepping_is_allocation_free() {
    let mut fabric: Fabric<Box<dyn Shaper + Send>> = Fabric::new();
    for v in 0..8 {
        if v % 2 == 0 {
            fabric.add_node(Box::new(TokenBucket::sigma_rho(5e12, 1e9, 10e9)), 10e9);
        } else {
            fabric.add_node(Box::new(StaticShaper::new(8e9)), 10e9);
        }
    }
    // Long-lived flows: no completions, so the flow set is stable and
    // the scratch buffers reach their high-water mark during warm-up.
    for s in 0..8usize {
        fabric.start_flow(FlowSpec::new(s, (s + 3) % 8, 1e18));
    }
    for _ in 0..50 {
        fabric.step(0.1);
    }
    fabric.reset_perf();

    // 1. Cache-hit steady state: zero allocations.
    let hit_allocs = measured(|| {
        for _ in 0..1_000 {
            let completed = fabric.step(0.1);
            assert!(completed.is_empty(), "steady flows must not complete");
        }
    });
    let perf = fabric.perf();
    assert!(perf.rate_cache_hits >= 990, "expected cache hits, got {perf:?}");
    assert_eq!(hit_allocs, 0, "cache-hit steps allocated {hit_allocs} times");

    // 2. Forced recomputation every step (alternating core capacity
    // flips the input signature without changing the flow set): the
    // water-filling rerun must reuse the scratch buffers, still zero.
    // One warm-up round first so both signature states have been seen.
    for i in 0..4 {
        fabric.set_core_capacity(if i % 2 == 0 { 20e9 } else { 30e9 });
        fabric.step(0.1);
    }
    fabric.reset_perf();
    let recompute_allocs = measured(|| {
        for i in 0..1_000 {
            fabric.set_core_capacity(if i % 2 == 0 { 20e9 } else { 30e9 });
            fabric.step(0.1);
        }
    });
    let perf = fabric.perf();
    assert_eq!(perf.rate_recomputes, 1_000, "every step must recompute: {perf:?}");
    assert_eq!(
        recompute_allocs, 0,
        "recompute steps allocated {recompute_allocs} times"
    );
}

#[test]
fn resting_is_allocation_free() {
    let mut fabric = Fabric::new();
    for _ in 0..8 {
        fabric.add_node(TokenBucket::sigma_rho(5e12, 1e9, 10e9), 10e9);
    }
    // Warm-up: one rest call settles any lazy shaper state.
    fabric.rest(1.0, 0.1);
    let rest_allocs = measured(|| {
        fabric.rest(600.0, 0.1);
        for _ in 0..100 {
            let completed = fabric.step(0.1);
            assert!(completed.is_empty());
        }
    });
    assert_eq!(rest_allocs, 0, "rest allocated {rest_allocs} times");
}

/// The event engine's steady-state jumps must be allocation-free too:
/// the window kernel works entirely in the pre-grown struct-of-arrays
/// mirrors (`ev_src`/`ev_rem`/wants/runs) and the caller's completion
/// buffer. Fast-path stepping and event-path jumping are measured in
/// **independent counter epochs** on the *same* fabric — each path is
/// warmed and judged on its own, so neither can mask the other.
#[test]
fn event_jump_steady_state_is_allocation_free() {
    use netsim::fabric::StepPath;

    let mut fabric: Fabric<Box<dyn Shaper + Send>> = Fabric::new();
    for v in 0..8 {
        if v % 2 == 0 {
            fabric.add_node(Box::new(TokenBucket::sigma_rho(5e12, 1e9, 10e9)), 10e9);
        } else {
            fabric.add_node(Box::new(StaticShaper::new(8e9)), 10e9);
        }
    }
    // Long-lived flows: no completions, a stable flow set, maximal
    // event windows.
    for s in 0..8usize {
        fabric.start_flow(FlowSpec::new(s, (s + 3) % 8, 1e18));
    }
    let mut done = Vec::with_capacity(16);

    // Epoch 1: fast path. Warm inside the path, measure inside the path.
    fabric.force_path(StepPath::Fast);
    for _ in 0..50 {
        fabric.advance(0.1, 4, &mut done);
    }
    let fast_allocs = measured(|| {
        for _ in 0..250 {
            fabric.advance(0.1, 4, &mut done);
            assert!(done.is_empty(), "steady flows must not complete");
        }
    });
    assert_eq!(fast_allocs, 0, "fast-path advance allocated {fast_allocs} times");

    // Epoch 2: event path on the same fabric. Its warm-up (growing the
    // struct-of-arrays mirrors to the high-water mark) happens inside
    // this epoch's warm-up phase, not under the fast path's counter.
    fabric.force_path(StepPath::Event);
    for _ in 0..50 {
        fabric.advance(0.1, 64, &mut done);
    }
    fabric.reset_perf();
    let event_allocs = measured(|| {
        for _ in 0..250 {
            fabric.advance(0.1, 64, &mut done);
            assert!(done.is_empty(), "steady flows must not complete");
        }
    });
    let perf = fabric.perf();
    assert!(perf.event_jumps > 0, "event engine never jumped: {perf:?}");
    assert!(
        perf.event_steps > perf.steps / 2,
        "jumps covered too few steps: {perf:?}"
    );
    assert_eq!(
        event_allocs, 0,
        "event jumps allocated {event_allocs} times ({perf:?})"
    );
}
