//! Event-engine equivalence suite (DESIGN.md §10).
//!
//! The event-driven stepping engine jumps the fabric between
//! closed-form event horizons (token-bucket crossings, QoS burst
//! boundaries, fault-schedule edges, flow-completion epochs) and must
//! be **bit-identical** to the reference loops in every observable —
//! not merely close. These properties drive randomized campaigns
//! (mixed shaper kinds, fault schedules, core capacities, flow churn)
//! through an event-path fabric and a `force_reference_path` twin via
//! [`Fabric::advance`], stopping the event fabric at every event
//! boundary [`Fabric::next_event`] reports and comparing rates, queue
//! depths (token budgets), flow state, and an accumulated golden trace
//! hash bitwise at each boundary. RNG-bearing shapers (PerCoreQos,
//! NoiseShaper) pin the RNG stream position: one skipped or duplicated
//! `transmit` would desynchronize the stream and surface in the very
//! next grant.
//!
//! Adversarial cases cover zero-length events (horizon 0 at entry),
//! simultaneous crossings (identical twins depleting on the same
//! step + equal-size flows completing together), and a fault edge
//! landing exactly on a token-bucket refill crossing.

use netsim::fabric::{EventCause, Fabric, FlowId, FlowSpec, StepPath};
use netsim::faults::{FaultConfig, FaultEpisode, FaultKind, FaultSchedule};
use netsim::rng::SimRng;
use netsim::shaper::{
    MinShaper, NoiseConfig, NoiseShaper, PerCoreQos, PerCoreQosConfig, Shaper, StaticShaper,
    TokenBucket,
};
use proplite::prelude::*;

/// One of the shaper kinds the fabric is exercised with. Construction
/// is a pure function of `(kind, seed)` so the event and reference
/// fabrics get bitwise-identical twins.
fn make_shaper(kind: usize, seed: u64) -> Box<dyn Shaper + Send> {
    match kind % 5 {
        0 => Box::new(TokenBucket::sigma_rho(
            40e9 + (seed % 7) as f64 * 10e9,
            1e9,
            10e9,
        )),
        1 => Box::new(PerCoreQos::new(PerCoreQosConfig::gce(4), seed)),
        2 => Box::new(NoiseShaper::new(NoiseConfig::hpccloud(), seed)),
        3 => Box::new(StaticShaper::new(5e9 + (seed % 5) as f64 * 1e9)),
        _ => Box::new(MinShaper::new(
            TokenBucket::sigma_rho(60e9, 2e9, 8e9).with_idle_refill(4e9),
            StaticShaper::new(9e9),
        )),
    }
}

type DynFabric = Fabric<Box<dyn Shaper + Send>>;

/// Build the event-path fabric and its reference-path twin from the
/// same construction script.
fn build_pair(
    kinds: &[usize],
    seed: u64,
    with_faults: bool,
    core_gbps: Option<f64>,
) -> (DynFabric, DynFabric) {
    let build = || {
        let mut f: DynFabric = Fabric::new();
        for (v, &k) in kinds.iter().enumerate() {
            f.add_node(make_shaper(k, seed ^ v as u64), 10e9);
        }
        if with_faults {
            let cfg = FaultConfig {
                stall_rate_per_hour: 30.0,
                stall_mean_s: 4.0,
                degrade_rate_per_hour: 60.0,
                degrade_mean_s: 8.0,
                degrade_min_factor: 0.2,
                degrade_max_factor: 0.8,
                loss_rate_per_hour: 20.0,
                loss_mean_s: 3.0,
                loss_frac: 0.3,
                probe_loss_prob: 0.0,
                pair_death_rate_per_hour: 0.0,
            };
            f.set_fault_schedule(FaultSchedule::generate(&cfg, kinds.len(), 600.0, seed));
        }
        if let Some(g) = core_gbps {
            f.set_core_capacity(g * 1e9);
        }
        f
    };
    let mut event = build();
    event.force_path(StepPath::Event);
    let mut reference = build();
    reference.force_reference_path(true);
    (event, reference)
}

/// FNV-1a over one fabric's observable state: the golden trace hash
/// sampled at event boundaries. Identical streams of boundary hashes
/// are the campaign-level equivalence witness.
fn golden_hash(acc: &mut u64, f: &DynFabric, flows: &[FlowId]) {
    let mut fold = |x: u64| {
        *acc ^= x;
        *acc = acc.wrapping_mul(0x100_0000_01b3);
    };
    fold(f.now().to_bits());
    fold(f.active_flows() as u64);
    for v in 0..f.node_count() {
        fold(f.node_last_tx_bits(v).to_bits());
        fold(f.node_total_tx_bits(v).to_bits());
        fold(
            f.node_shaper(v)
                .token_budget_bits()
                .map(f64::to_bits)
                .unwrap_or(1),
        );
    }
    for &id in flows {
        fold(f.flow_remaining_bits(id).map(f64::to_bits).unwrap_or(2));
        fold(f.flow_last_rate(id).map(f64::to_bits).unwrap_or(3));
    }
}

/// Compare every observable of the two fabrics bitwise.
fn assert_fabrics_bit_equal(
    event: &DynFabric,
    reference: &DynFabric,
    flows: &[FlowId],
    ctx: &str,
) {
    assert_eq!(
        event.now().to_bits(),
        reference.now().to_bits(),
        "clock diverged ({ctx})"
    );
    assert_eq!(
        event.active_flows(),
        reference.active_flows(),
        "flow count ({ctx})"
    );
    for v in 0..event.node_count() {
        assert_eq!(
            event.node_last_tx_bits(v).to_bits(),
            reference.node_last_tx_bits(v).to_bits(),
            "node {v} last_tx ({ctx})"
        );
        assert_eq!(
            event.node_total_tx_bits(v).to_bits(),
            reference.node_total_tx_bits(v).to_bits(),
            "node {v} total_tx ({ctx})"
        );
        let be = event.node_shaper(v).token_budget_bits().map(f64::to_bits);
        let br = reference
            .node_shaper(v)
            .token_budget_bits()
            .map(f64::to_bits);
        assert_eq!(be, br, "node {v} token budget ({ctx})");
    }
    for &id in flows {
        assert_eq!(
            event.flow_remaining_bits(id).map(f64::to_bits),
            reference.flow_remaining_bits(id).map(f64::to_bits),
            "flow {id:?} remaining ({ctx})"
        );
        assert_eq!(
            event.flow_last_rate(id).map(f64::to_bits),
            reference.flow_last_rate(id).map(f64::to_bits),
            "flow {id:?} last rate ({ctx})"
        );
    }
}

/// Drive both fabrics through an identical randomized campaign of flow
/// churn and `advance` calls. The event fabric's budget alternates
/// between exactly-one-event windows (from [`Fabric::next_event`], so
/// the comparison lands on every event boundary — including horizon-0,
/// i.e. zero-length, events) and random budgets that truncate windows
/// mid-flight. Golden trace hashes accumulate at every boundary and
/// must agree at every boundary.
fn run_event_script(
    event: &mut DynFabric,
    reference: &mut DynFabric,
    script_seed: u64,
    epochs: usize,
    dt: f64,
) {
    let mut rng = SimRng::new(script_seed);
    let mut all_flows: Vec<FlowId> = Vec::new();
    let (mut hash_e, mut hash_r) = (0xcbf2_9ce4_8422_2325u64, 0xcbf2_9ce4_8422_2325u64);
    let n = event.node_count();
    for epoch in 0..epochs {
        if rng.chance(0.5) || event.active_flows() == 0 {
            for _ in 0..rng.index(4) + 1 {
                let src = rng.index(n);
                let dst = (src + 1 + rng.index(n - 1)) % n;
                let bits = rng.uniform_in(5e8, 2e10);
                let mut spec = FlowSpec::new(src, dst, bits);
                if rng.chance(0.3) {
                    spec.max_rate_bps = rng.uniform_in(5e8, 6e9);
                }
                let a = event.start_flow(spec);
                let b = reference.start_flow(spec);
                assert_eq!(a, b, "flow ids diverged");
                all_flows.push(a);
            }
        }
        // Pick this epoch's budget: stop exactly at the next event
        // boundary (+1 so horizon-0 events still make progress), or
        // truncate a window at a random earlier point.
        let budget = if rng.chance(0.7) {
            let ev = event.next_event(dt, 100_000);
            ev.steps.saturating_add(1).min(256)
        } else {
            rng.index(24) as u64 + 1
        };
        let mut done_e = Vec::new();
        let mut done_r = Vec::new();
        let te = event.advance(dt, budget, &mut done_e);
        let tr = reference.advance(dt, budget, &mut done_r);
        assert_eq!(te, tr, "steps taken diverged at epoch {epoch}");
        assert_eq!(done_e, done_r, "completions diverged at epoch {epoch}");
        assert_fabrics_bit_equal(event, reference, &all_flows, &format!("epoch {epoch}"));
        golden_hash(&mut hash_e, event, &all_flows);
        golden_hash(&mut hash_r, reference, &all_flows);
        assert_eq!(hash_e, hash_r, "golden trace hash diverged at epoch {epoch}");

        // Occasionally drain everything and rest, exercising the idle
        // jump (closed-form shaper rests) against the reference loop.
        if rng.chance(0.05) {
            let mut done_e = Vec::new();
            let mut done_r = Vec::new();
            while event.active_flows() > 0 {
                let te = event.advance(dt, 4_000_000, &mut done_e);
                let tr = reference.advance(dt, te, &mut done_r);
                assert_eq!(te, tr, "drain steps diverged");
            }
            assert_eq!(done_e, done_r, "drain completions diverged");
            assert_fabrics_bit_equal(event, reference, &all_flows, "after drain");
            let window = rng.uniform_in(1.0, 40.0);
            event.rest(window, dt);
            reference.rest(window, dt);
            assert_fabrics_bit_equal(event, reference, &all_flows, "after rest");
        }
    }
    // RNG-position pin: one more grant from every shaper. A skipped or
    // duplicated transmit anywhere in the campaign desynchronizes
    // PerCoreQos / NoiseShaper RNG streams and shows up here even if
    // every earlier observable happened to agree.
    for _ in 0..3 {
        let ce = event.step(dt);
        let cr = reference.step(dt);
        assert_eq!(ce, cr, "post-campaign completions diverged");
    }
    assert_fabrics_bit_equal(event, reference, &all_flows, "rng position pin");
}

prop_cases! {
    #![config(Config::with_cases(24))]

    /// The flagship property: mixed shapers, random flow churn, faults
    /// and core capacity on or off — every observable bitwise equal
    /// between the event-jumped and reference paths at every event
    /// boundary, with matching golden trace hashes.
    #[test]
    fn event_path_is_bit_identical(
        seed in 0u64..100_000,
        n_nodes in 2usize..7,
        with_faults in bools(),
        with_core in bools(),
        dt_ms in 50u64..500,
    ) {
        let mut rng = SimRng::new(seed ^ 0xE7);
        let kinds: Vec<usize> = (0..n_nodes).map(|_| rng.index(5)).collect();
        let core = if with_core { Some(12.0) } else { None };
        let (mut event, mut reference) = build_pair(&kinds, seed, with_faults, core);
        run_event_script(&mut event, &mut reference, seed ^ 0x5C817, 80, dt_ms as f64 / 1000.0);
    }

    /// Token-bucket-only campaign: long depleted stretches make the
    /// busy hints open maximal windows, so jumps cover nearly every
    /// step — the regime the fig19 campaign lives in.
    #[test]
    fn event_path_depletion_regime(seed in 0u64..100_000, dt_ms in 100u64..600) {
        let kinds = [0usize, 0, 0, 0];
        let (mut event, mut reference) = build_pair(&kinds, seed, false, None);
        run_event_script(&mut event, &mut reference, seed, 60, dt_ms as f64 / 1000.0);
        let perf = event.perf();
        assert!(perf.event_jumps > 0, "event engine never jumped: {perf:?}");
        assert!(
            perf.event_steps > perf.steps / 2,
            "jumps covered too few steps: {perf:?}"
        );
    }

    /// Zero-length events: a fabric whose next event horizon is 0 at
    /// entry (fault transition in the very first step) must degrade to
    /// single honest steps, never stall, and stay bit-identical.
    #[test]
    fn zero_length_events_make_progress(seed in 0u64..100_000) {
        let kinds = [0usize, 1, 0];
        let build = || {
            let mut f: DynFabric = Fabric::new();
            for (v, &k) in kinds.iter().enumerate() {
                f.add_node(make_shaper(k, seed ^ v as u64), 10e9);
            }
            // Transitions denser than the step cadence: every horizon
            // is 0 or 1 for the whole campaign.
            let eps = (0..40).map(|i| FaultEpisode {
                node: i % 3,
                start_s: i as f64 * 0.25,
                end_s: i as f64 * 0.25 + 0.125,
                kind: FaultKind::LinkDegrade,
                rate_factor: 0.5,
            });
            f.set_fault_schedule(FaultSchedule::from_episodes(3, 60.0, eps));
            f
        };
        let mut event = build();
        event.force_path(StepPath::Event);
        let mut reference = build();
        reference.force_reference_path(true);

        let ev = event.next_event(0.25, 1000);
        prop_assert!(ev.steps <= 1, "expected dense horizon, got {:?}", ev);

        run_event_script(&mut event, &mut reference, seed, 40, 0.25);

        // An explicit zero budget is a no-op on both paths.
        let before = event.now().to_bits();
        let mut done = Vec::new();
        prop_assert_eq!(event.advance(0.25, 0, &mut done), 0);
        prop_assert_eq!(reference.advance(0.25, 0, &mut done), 0);
        prop_assert_eq!(event.now().to_bits(), before);
        prop_assert!(done.is_empty());
    }

    /// Simultaneous crossings: identical token buckets deplete on the
    /// same step, and equal-size flows complete on the same step. The
    /// event engine must report the completions in the same order and
    /// land both crossings on the same boundary as the reference.
    #[test]
    fn simultaneous_crossings(seed in 0u64..100_000, pairs in 2usize..5) {
        let kinds = vec![0usize; pairs * 2];
        let (mut event, mut reference) = build_pair(&kinds, seed & !0x3, false, None);
        let mut flows = Vec::new();
        for p in 0..pairs {
            // Same size both directions: completions coincide.
            for (s, d) in [(2 * p, 2 * p + 1), (2 * p + 1, 2 * p)] {
                let spec = FlowSpec::new(s, d, 3e10);
                let a = event.start_flow(spec);
                let b = reference.start_flow(spec);
                prop_assert_eq!(a, b);
                flows.push(a);
            }
        }
        let mut done_e = Vec::new();
        let mut done_r = Vec::new();
        let mut guard = 0;
        while event.active_flows() > 0 {
            let te = event.advance(0.5, 64, &mut done_e);
            let tr = reference.advance(0.5, te.max(1), &mut done_r);
            prop_assert_eq!(te, tr);
            assert_fabrics_bit_equal(&event, &reference, &flows, "simultaneous");
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert_eq!(&done_e, &done_r);
        // All flows completed, in id order within each completing step.
        prop_assert_eq!(done_e.len(), pairs * 2);
    }

    /// A fault edge landing exactly on a token-bucket refill crossing:
    /// both events collapse onto one boundary and neither may be
    /// skipped or double-applied.
    #[test]
    fn fault_edge_on_refill_crossing(seed in 0u64..100_000, edge_steps in 4u64..40) {
        let dt = 0.5;
        let edge_t = edge_steps as f64 * dt;
        let build = || {
            let mut f: DynFabric = Fabric::new();
            for v in 0..3usize {
                // Small bucket: depletes quickly under saturation, then
                // rides the refill floor — the refill-crossing regime.
                f.add_node(
                    Box::new(TokenBucket::sigma_rho(5e9, 1e9, 10e9)) as Box<dyn Shaper + Send>,
                    10e9,
                );
                let _ = v;
            }
            // Episode edges exactly on step multiples of the campaign
            // cadence, so the fault transition and the bucket's refill
            // crossing land on the same boundary.
            let eps = [
                FaultEpisode {
                    node: 0,
                    start_s: edge_t,
                    end_s: edge_t + 2.0 * dt,
                    kind: FaultKind::VmStall,
                    rate_factor: 0.0,
                },
                FaultEpisode {
                    node: 1,
                    start_s: edge_t,
                    end_s: edge_t + 4.0 * dt,
                    kind: FaultKind::LinkDegrade,
                    rate_factor: 0.25,
                },
            ];
            f.set_fault_schedule(FaultSchedule::from_episodes(3, 600.0, eps));
            f
        };
        let mut event = build();
        event.force_path(StepPath::Event);
        let mut reference = build();
        reference.force_reference_path(true);
        let mut flows = Vec::new();
        for (s, d) in [(0usize, 1usize), (1, 2), (2, 0)] {
            let spec = FlowSpec::new(s, d, 1e12 + (seed % 100) as f64 * 1e9);
            let a = event.start_flow(spec);
            let b = reference.start_flow(spec);
            prop_assert_eq!(a, b);
            flows.push(a);
        }
        // March across the edge one event boundary at a time.
        let mut done_e = Vec::new();
        let mut done_r = Vec::new();
        let mut crossed_fault_boundary = false;
        while event.now() < edge_t + 6.0 * dt {
            let ev = event.next_event(dt, 100_000);
            if matches!(ev.cause, EventCause::FaultTransition) {
                crossed_fault_boundary = true;
            }
            let budget = ev.steps.saturating_add(1).min(128);
            let te = event.advance(dt, budget, &mut done_e);
            let tr = reference.advance(dt, budget, &mut done_r);
            prop_assert_eq!(te, tr);
            prop_assert!(te > 0, "no progress across the fault edge");
            assert_fabrics_bit_equal(&event, &reference, &flows, "fault edge");
        }
        prop_assert_eq!(&done_e, &done_r);
        prop_assert!(
            crossed_fault_boundary,
            "campaign never saw the fault-transition horizon"
        );
    }
}
