//! Property-based tests over the fault-injection layer.
//!
//! The contracts that keep the robustness PR honest: fault timelines
//! are a pure function of (config, topology, horizon, seed); zero-rate
//! configurations are indistinguishable from no faults at all; and the
//! [`FaultInjector`] never grants more than its inner shaper would.

use netsim::faults::{FaultConfig, FaultInjector, FaultKind, FaultSchedule};
use netsim::shaper::{Shaper, StaticShaper, TokenBucket};
use netsim::units::gbps;
use proplite::prelude::*;

/// A fault config with every class enabled at property-varied rates.
fn config_from(stall: f64, degrade: f64, loss: f64) -> FaultConfig {
    FaultConfig {
        stall_rate_per_hour: stall,
        stall_mean_s: 20.0,
        degrade_rate_per_hour: degrade,
        degrade_mean_s: 120.0,
        degrade_min_factor: 0.3,
        degrade_max_factor: 0.9,
        loss_rate_per_hour: loss,
        loss_mean_s: 15.0,
        loss_frac: 0.4,
        probe_loss_prob: 0.0,
        pair_death_rate_per_hour: 0.0,
    }
}

prop_cases! {
    #![config(Config::with_cases(32))]

    /// Same (config, n, horizon, seed) → bit-identical fault timeline.
    #[test]
    fn schedule_is_a_pure_function_of_its_seed(
        seed in 0u64..500,
        n in 1usize..10,
        hours in 1u64..24,
        stall in 0.05f64..2.0,
        degrade in 0.05f64..2.0,
    ) {
        let cfg = config_from(stall, degrade, 0.5);
        let horizon = hours as f64 * 3600.0;
        let a = FaultSchedule::generate(&cfg, n, horizon, seed);
        let b = FaultSchedule::generate(&cfg, n, horizon, seed);
        prop_assert!(a.timeline() == b.timeline());
        for node in 0..n {
            prop_assert!(a.node_episodes(node) == b.node_episodes(node));
        }
    }

    /// A config whose every rate is zero produces an empty schedule
    /// and transparent factors, regardless of the other knobs.
    #[test]
    fn zero_rate_config_is_inert(
        seed in 0u64..500,
        n in 1usize..8,
        stall_mean in 0.0f64..600.0,
        degrade_mean in 0.0f64..600.0,
        loss_frac in 0.0f64..1.0,
    ) {
        let cfg = FaultConfig {
            stall_mean_s: stall_mean,
            degrade_mean_s: degrade_mean,
            loss_frac,
            ..FaultConfig::NONE
        };
        prop_assert!(cfg.is_off());
        let schedule = FaultSchedule::generate(&cfg, n, 86_400.0, seed);
        prop_assert!(schedule.is_empty());
        for node in 0..n {
            for k in 0..20 {
                let t = k as f64 * 4321.0;
                prop_assert!(schedule.factor_at(node, t) == 1.0);
                prop_assert!(!schedule.stalled_at(node, t));
            }
        }
    }

    /// Episodes are well-formed: inside the horizon, positive length,
    /// sorted per node, with factors matching their kind.
    #[test]
    fn episodes_are_well_formed(
        seed in 0u64..500,
        n in 1usize..8,
        stall in 0.1f64..3.0,
        degrade in 0.1f64..3.0,
        loss in 0.1f64..3.0,
    ) {
        let horizon = 7200.0;
        let schedule = FaultSchedule::generate(&config_from(stall, degrade, loss), n, horizon, seed);
        for node in 0..n {
            let eps = schedule.node_episodes(node);
            for e in eps {
                prop_assert!(e.node == node);
                prop_assert!(e.start_s >= 0.0 && e.end_s <= horizon + 1e-9);
                prop_assert!(e.start_s < e.end_s);
                match e.kind {
                    FaultKind::VmStall => prop_assert!(e.rate_factor == 0.0),
                    FaultKind::LinkDegrade => {
                        prop_assert!(e.rate_factor >= 0.3 - 1e-12 && e.rate_factor <= 0.9 + 1e-12)
                    }
                    FaultKind::LossBurst => {
                        prop_assert!((e.rate_factor - 0.6).abs() < 1e-9)
                    }
                }
            }
            prop_assert!(eps.windows(2).all(|w| w[0].start_s <= w[1].start_s));
        }
    }

    /// Point queries agree with a brute-force scan over the episodes,
    /// and factors always stay within [0, 1].
    #[test]
    fn factor_queries_match_brute_force(
        seed in 0u64..300,
        n in 1usize..6,
        stall in 0.2f64..4.0,
        degrade in 0.2f64..4.0,
    ) {
        let horizon = 3600.0;
        let schedule = FaultSchedule::generate(&config_from(stall, degrade, 1.0), n, horizon, seed);
        for node in 0..n {
            for k in 0..60 {
                let t = k as f64 * 61.7;
                let expected = schedule
                    .node_episodes(node)
                    .iter()
                    .filter(|e| e.active_at(t))
                    .map(|e| if e.kind == FaultKind::VmStall { 0.0 } else { e.rate_factor })
                    .fold(1.0, f64::min);
                let got = schedule.factor_at(node, t);
                prop_assert!((got - expected).abs() < 1e-12, "node {node} t {t}: {got} vs {expected}");
                prop_assert!((0.0..=1.0).contains(&got));
            }
        }
    }

    /// Growing the topology never perturbs existing nodes' timelines:
    /// per-node streams are decoupled by seed derivation.
    #[test]
    fn extra_nodes_do_not_perturb_existing_ones(
        seed in 0u64..300,
        n in 1usize..6,
        extra in 1usize..5,
    ) {
        let cfg = config_from(1.0, 1.0, 1.0);
        let small = FaultSchedule::generate(&cfg, n, 7200.0, seed);
        let big = FaultSchedule::generate(&cfg, n + extra, 7200.0, seed);
        for node in 0..n {
            prop_assert!(small.node_episodes(node) == big.node_episodes(node));
        }
    }

    /// An injector with an empty schedule is byte-identical to its
    /// inner shaper; with any schedule it never grants more.
    #[test]
    fn injector_is_transparent_when_empty_and_never_generous(
        seed in 0u64..300,
        budget_gbit in 0.0f64..5000.0,
        demand_gbit in 0.0f64..50.0,
    ) {
        let mk = || {
            TokenBucket::new(
                budget_gbit * 1e9,
                5000.0f64.max(budget_gbit) * 1e9,
                gbps(10.0),
                gbps(1.0),
                gbps(1.0),
            )
        };
        let empty = FaultSchedule::empty(1, 3600.0);
        let mut plain = mk();
        let mut gated = FaultInjector::new(mk(), 0, empty);
        let mut t = 0.0;
        for _ in 0..50 {
            let d = demand_gbit * 1e9;
            let a = plain.transmit(t, 1.0, d);
            let b = gated.transmit(t, 1.0, d);
            prop_assert!(a == b, "empty-schedule injector diverged: {a} vs {b}");
            t += 1.0;
        }

        // Faults can shift grants later (a stalled bucket keeps its
        // budget), but can never create throughput: the cumulative
        // grant stays at or below the fault-free run's at every step.
        let faulty = FaultSchedule::generate(&config_from(2.0, 2.0, 2.0), 1, 3600.0, seed);
        let mut plain = mk();
        let mut gated = FaultInjector::new(mk(), 0, faulty);
        let (mut cum_a, mut cum_b) = (0.0, 0.0);
        let mut t = 0.0;
        for _ in 0..50 {
            let d = demand_gbit * 1e9;
            let b = gated.transmit(t, 1.0, d);
            cum_a += plain.transmit(t, 1.0, d);
            cum_b += b;
            prop_assert!(b >= 0.0 && b <= d + 1e-6);
            prop_assert!(
                cum_b <= cum_a + 1.0,
                "faults created throughput: {cum_b} vs {cum_a}"
            );
            t += 1.0;
        }
    }

    /// Static shapers under a stall grant exactly zero for the stalled
    /// window and full rate outside it.
    #[test]
    fn stall_windows_gate_exactly(start in 10.0f64..100.0, len in 1.0f64..50.0) {
        use netsim::faults::FaultEpisode;
        let schedule = FaultSchedule::from_episodes(
            1,
            1000.0,
            vec![FaultEpisode {
                node: 0,
                start_s: start,
                end_s: start + len,
                kind: FaultKind::VmStall,
                rate_factor: 0.0,
            }],
        );
        let mut s = FaultInjector::new(StaticShaper::new(gbps(1.0)), 0, schedule);
        let mut t = 0.0;
        while t < 200.0 {
            let g = s.transmit(t, 0.5, f64::INFINITY);
            let mid = t; // factor sampled at interval start
            if mid >= start && mid < start + len {
                prop_assert!(g == 0.0, "granted {g} during stall at {t}");
            } else {
                prop_assert!((g - gbps(1.0) * 0.5).abs() < 1e-3, "grant {g} at {t}");
            }
            t += 0.5;
        }
    }
}
