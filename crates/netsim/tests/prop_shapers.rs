//! Property-based tests over shaper, pattern, and fabric invariants.

use netsim::fabric::{Fabric, FlowSpec};
use netsim::pattern::TrafficPattern;
use netsim::shaper::{
    EmpiricalShaper, NoiseConfig, NoiseShaper, PerCoreQos, PerCoreQosConfig, QuantileDist, Shaper,
    StaticShaper, TokenBucket,
};
use proplite::prelude::*;

/// Drive any shaper through a schedule and check universal invariants:
/// grants are within [0, demand], and replay after reset is identical.
fn check_shaper_invariants<S: Shaper>(shaper: &mut S, schedule: &[(f64, f64)]) {
    let mut grants = Vec::new();
    let mut t = 0.0;
    for &(dt, demand) in schedule {
        let g = shaper.transmit(t, dt, demand);
        assert!(g >= 0.0, "negative grant {g}");
        assert!(g <= demand + 1e-6, "grant {g} exceeds demand {demand}");
        grants.push(g);
        t += dt;
    }
    shaper.reset();
    let mut t = 0.0;
    for (i, &(dt, demand)) in schedule.iter().enumerate() {
        let g = shaper.transmit(t, dt, demand);
        assert_eq!(g, grants[i], "replay diverged at step {i}");
        t += dt;
    }
}

fn schedule_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    vec_of((0.01f64..2.0, 0.0f64..5e10), 1..120)
}

prop_cases! {
    #![config(Config::with_cases(48))]

    #[test]
    fn token_bucket_universal(schedule in schedule_strategy(), budget in 0.0f64..1e13) {
        let mut tb = TokenBucket::sigma_rho(budget, 1e9, 10e9);
        check_shaper_invariants(&mut tb, &schedule);
    }

    #[test]
    fn per_core_universal(schedule in schedule_strategy(), seed in 0u64..1000, cores in 1u32..16) {
        let mut s = PerCoreQos::new(PerCoreQosConfig::gce(cores), seed);
        check_shaper_invariants(&mut s, &schedule);
    }

    #[test]
    fn noise_universal(schedule in schedule_strategy(), seed in 0u64..1000) {
        let mut s = NoiseShaper::new(NoiseConfig::hpccloud(), seed);
        check_shaper_invariants(&mut s, &schedule);
        // Noise shaper never exceeds its ceiling per step.
        s.reset();
        let mut t = 0.0;
        for &(dt, _) in &schedule {
            let g = s.transmit(t, dt, f64::INFINITY);
            prop_assert!(g <= 10.4e9 * dt + 1e-3);
            t += dt;
        }
    }

    #[test]
    fn empirical_universal(
        schedule in schedule_strategy(),
        seed in 0u64..1000,
        interval in 1.0f64..60.0,
    ) {
        let dist = QuantileDist::from_box(1e8, 3e8, 5e8, 7e8, 9e8);
        let mut s = EmpiricalShaper::new(dist, interval, seed);
        check_shaper_invariants(&mut s, &schedule);
        // Grants bounded by the distribution's support.
        s.reset();
        let mut t = 0.0;
        for &(dt, _) in &schedule {
            let g = s.transmit(t, dt, f64::INFINITY);
            prop_assert!(g <= 9e8 * dt + 1e-3, "g {} dt {}", g, dt);
            t += dt;
        }
    }

    #[test]
    fn static_universal(schedule in schedule_strategy(), rate in 0.0f64..1e11) {
        let mut s = StaticShaper::new(rate);
        check_shaper_invariants(&mut s, &schedule);
    }

    /// Duty-cycle patterns: measured on-fraction over many periods
    /// converges to on/(on+off).
    #[test]
    fn pattern_duty_fraction(on in 1.0f64..30.0, off in 1.0f64..60.0) {
        let p = TrafficPattern::DutyCycle { on_s: on, off_s: off };
        let period = on + off;
        let steps = 20_000;
        let dt = period * 50.0 / steps as f64;
        let on_steps = (0..steps).filter(|&i| p.is_on(i as f64 * dt)).count();
        let measured = on_steps as f64 / steps as f64;
        prop_assert!((measured - p.duty_fraction()).abs() < 0.02);
    }

    /// Max-min fairness: symmetric flows through one bottleneck get
    /// equal rates, and no node's egress cap is exceeded.
    #[test]
    fn maxmin_symmetric_fairness(n_senders in 2usize..8, cap_gbps in 1.0f64..20.0) {
        let cap = cap_gbps * 1e9;
        let mut fabric = Fabric::new();
        // Senders + one sink; sink ingress is the shared bottleneck.
        for _ in 0..n_senders {
            fabric.add_node(StaticShaper::new(cap * 10.0), cap * 10.0);
        }
        let sink = fabric.add_node(StaticShaper::new(cap), cap);
        let ids: Vec<_> = (0..n_senders)
            .map(|s| fabric.start_flow(FlowSpec::new(s, sink, 1e15)))
            .collect();
        fabric.step(0.1);
        let rates: Vec<f64> = ids.iter().map(|&id| fabric.flow_last_rate(id).unwrap()).collect();
        let expected = cap / n_senders as f64;
        for r in &rates {
            prop_assert!((r - expected).abs() / expected < 1e-6, "rate {} expected {}", r, expected);
        }
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= cap * 1.000001);
    }

    /// Fabric progress: every finite flow eventually completes when all
    /// caps are positive.
    #[test]
    fn fabric_liveness(
        bits in 1e6f64..1e11,
        rate in 1e8f64..1e10,
    ) {
        let mut fabric = Fabric::new();
        fabric.add_node(StaticShaper::new(rate), rate);
        fabric.add_node(StaticShaper::new(rate), rate);
        fabric.start_flow(FlowSpec::new(0, 1, bits));
        let mut steps = 0u64;
        while fabric.active_flows() > 0 {
            fabric.step(1.0);
            steps += 1;
            prop_assert!(steps < 10_000_000, "flow did not complete");
        }
        // Completion time ≈ bits / rate.
        let expected = bits / rate;
        prop_assert!((fabric.now() - expected).abs() <= 1.0 + 1e-9);
    }
}
