//! EventQueue ordering properties.
//!
//! The queue's contract — earliest time first, stable FIFO among
//! simultaneous events — must hold across arbitrary interleavings of
//! `schedule` and `pop`, not just for a batch pushed up front. The
//! model here is a plain `Vec` scanned for its minimum (ties broken by
//! insertion sequence), which is trivially correct and trivially FIFO.

use netsim::events::EventQueue;
use netsim::rng::SimRng;
use proplite::prelude::*;

/// Reference model: linear scan for (earliest time, lowest sequence).
struct ModelQueue {
    entries: Vec<(f64, u64, u64)>, // (at, seq, payload)
    next_seq: u64,
}

impl ModelQueue {
    fn new() -> Self {
        ModelQueue { entries: Vec::new(), next_seq: 0 }
    }

    fn schedule(&mut self, at: f64, payload: u64) {
        self.entries.push((at, self.next_seq, payload));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
            .map(|(i, _)| i)?;
        let (at, _, payload) = self.entries.remove(best);
        Some((at, payload))
    }
}

prop_cases! {
    #![config(Config::with_cases(64))]

    /// Interleaved push/pop against the model. Times are quantized to a
    /// coarse grid so ties between events pushed in different bursts
    /// are common — the FIFO tie-break is the property under test.
    #[test]
    fn interleaved_ops_match_model(seed in 0u64..1_000_000, ops in 20usize..200) {
        let mut rng = SimRng::new(seed);
        let mut q = EventQueue::new();
        let mut model = ModelQueue::new();
        let mut payload = 0u64;
        for _ in 0..ops {
            if rng.chance(0.6) {
                // Quantized time: only 8 distinct values.
                let at = rng.index(8) as f64 * 0.5;
                q.schedule(at, payload);
                model.schedule(at, payload);
                payload += 1;
            } else {
                prop_assert_eq!(q.pop(), model.pop());
            }
            prop_assert_eq!(q.len(), model.entries.len());
            prop_assert_eq!(q.peek_time().map(f64::to_bits),
                model.entries.iter()
                    .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
                    .map(|e| e.0.to_bits()));
        }
        // Drain: the remaining events come out in model order.
        while let Some(expect) = model.pop() {
            prop_assert_eq!(q.pop(), Some(expect));
        }
        prop_assert!(q.is_empty());
    }

    /// `with_capacity` / `reserve` change allocation behaviour only:
    /// ordering is identical to a default-constructed queue, and the
    /// requested capacity is actually available.
    #[test]
    fn with_capacity_is_behaviorally_identical(seed in 0u64..1_000_000, n in 1usize..300) {
        let mut rng = SimRng::new(seed);
        let mut plain = EventQueue::new();
        let mut sized = EventQueue::with_capacity(n);
        prop_assert!(sized.capacity() >= n);
        for i in 0..n as u64 {
            let at = rng.index(5) as f64;
            plain.schedule(at, i);
            sized.schedule(at, i);
        }
        // A pre-sized queue never reallocated; a mid-stream reserve on
        // the plain queue must not disturb its contents either.
        plain.reserve(n);
        prop_assert!(plain.capacity() >= plain.len() + n);
        while let Some(e) = plain.pop() {
            prop_assert_eq!(sized.pop(), Some(e));
        }
        prop_assert!(sized.is_empty());
    }
}
