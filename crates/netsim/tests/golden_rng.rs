//! Golden-vector regression tests pinning the `SimRng` output streams.
//!
//! The simulator's entire stochastic substrate flows through the
//! xoshiro256++ core in `netsim::rng`. Every recorded experiment,
//! figure regeneration, and property-test replay seed depends on these
//! exact streams, so a PRNG-core change (like the one that introduced
//! this file, `rand::StdRng` -> in-house xoshiro256++) must be
//! *detectable*: if any of these vectors moves, the change is breaking
//! and must be called out, with re-recorded baselines, in its PR.
//!
//! Two layers of pinning plus distribution-level sanity:
//! * raw `next_u64` words straight out of the generator (catches core
//!   and seeding changes),
//! * the first 16 `uniform()` outputs for fixed seeds (catches changes
//!   to the 53-bit float conversion),
//! * moment checks for the derived samplers and the AR(1) process
//!   (catches sampler-algorithm swaps that happen to keep the raw
//!   stream intact).

use netsim::rng::{Ar1, SimRng};

/// Raw xoshiro256++ outputs after SplitMix64 seeding.
#[test]
fn golden_raw_words() {
    let expect: [(u64, [u64; 4]); 4] = [
        (
            0x0,
            [
                4914442186686166589,
                10794849391330360609,
                13233115837627479088,
                16498616020757169563,
            ],
        ),
        (
            0x1,
            [
                8519585912109933218,
                10835778687385656862,
                14656285455836079577,
                2080314971877677953,
            ],
        ),
        (
            0x2A,
            [
                14364114511653964483,
                5454468825661541484,
                330174794094209790,
                13216370853390790082,
            ],
        ),
        (
            0xDEAD_BEEF,
            [
                9209429011442329584,
                16716909130128445213,
                14476648930663104374,
                3402397971367283200,
            ],
        ),
    ];
    for (seed, words) in expect {
        let mut rng = SimRng::new(seed);
        for (i, w) in words.into_iter().enumerate() {
            assert_eq!(rng.next_u64(), w, "seed {seed:#x}, word {i}");
        }
    }
}

/// First 16 uniform() outputs for fixed seeds, bit-exact.
#[test]
fn golden_uniform_streams() {
    let expect: [(u64, [f64; 16]); 4] = [
        (
            0x0,
            [
                0.26641244476797765,
                0.58518995808671,
                0.7173686469954024,
                0.8943917666354535,
                0.8117880737306311,
                0.6495616660072635,
                0.9653814551125656,
                0.7555005462498794,
                0.26059160805117343,
                0.052650511759117835,
                0.9426263362281982,
                0.856552281432607,
                0.7978377290981056,
                0.5746641289781869,
                0.30739857315236296,
                0.3659771101398118,
            ],
        ),
        (
            0x1,
            [
                0.46184767772932434,
                0.5874087396717828,
                0.7945188265892589,
                0.11277410059819493,
                0.35306809077546253,
                0.13439764502635243,
                0.6997429579869191,
                0.28761044567044025,
                0.5787268413588946,
                0.4461016224995815,
                0.8835566757892286,
                0.7431689817539515,
                0.6978130315300112,
                0.023745343529942398,
                0.17742498889699143,
                0.20391044300213068,
            ],
        ),
        (
            0x2A,
            [
                0.7786802079682894,
                0.295687347526835,
                0.017898811452844776,
                0.7164608995810197,
                0.31632879771350053,
                0.04926491355074403,
                0.48001803084903016,
                0.2673066548016948,
                0.9176476047247921,
                0.9414093197204386,
                0.17336225314004194,
                0.19683979428002396,
                0.10456864116484732,
                0.6719377801184138,
                0.7422381007956593,
                0.5547240180327802,
            ],
        ),
        (
            0xDEAD_BEEF,
            [
                0.49924414707784015,
                0.9062254598064011,
                0.7847807110467445,
                0.18444436361083405,
                0.6868850068115718,
                0.9131203397391832,
                0.9463913790407518,
                0.5625997180795098,
                0.17348000770444805,
                0.9030009763299488,
                0.8785602939213506,
                0.3863614618247678,
                0.9235881227778752,
                0.964108855857849,
                0.6259195061128164,
                0.8536159338059021,
            ],
        ),
    ];
    for (seed, stream) in expect {
        let mut rng = SimRng::new(seed);
        for (i, v) in stream.into_iter().enumerate() {
            let got = rng.uniform();
            assert!(
                got == v,
                "seed {seed:#x}, output {i}: got {got:?}, pinned {v:?}"
            );
        }
    }
}

/// uniform() must stay in [0, 1) and use the full 53-bit resolution.
#[test]
fn uniform_range_and_resolution() {
    let mut rng = SimRng::new(7);
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..10_000 {
        let u = rng.uniform();
        assert!((0.0..1.0).contains(&u));
        distinct.insert(u.to_bits());
    }
    assert!(distinct.len() > 9_990, "only {} distinct", distinct.len());
}

/// Moment checks for the derived samplers: a core swap that kept the
/// raw words but broke a sampler would slip past the vectors above.
#[test]
fn sampler_moments() {
    let n = 100_000;

    // Normal(5, 2): mean and variance.
    let mut rng = SimRng::new(1001);
    let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    assert!((mean - 5.0).abs() < 0.03, "normal mean {mean}");
    assert!((var - 4.0).abs() < 0.08, "normal var {var}");

    // Exponential(rate 2): mean 1/2, variance 1/4.
    let mut rng = SimRng::new(1002);
    let xs: Vec<f64> = (0..n).map(|_| rng.exponential(2.0)).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    assert!((mean - 0.5).abs() < 0.01, "exponential mean {mean}");
    assert!((var - 0.25).abs() < 0.02, "exponential var {var}");

    // Poisson(12): mean == variance == 12 (Knuth branch).
    let mut rng = SimRng::new(1003);
    let xs: Vec<f64> = (0..n).map(|_| rng.poisson(12.0) as f64).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    assert!((mean - 12.0).abs() < 0.06, "poisson mean {mean}");
    assert!((var - 12.0).abs() < 0.3, "poisson var {var}");

    // Poisson(200): normal-approximation branch.
    let mut rng = SimRng::new(1004);
    let xs: Vec<f64> = (0..n).map(|_| rng.poisson(200.0) as f64).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    assert!((mean - 200.0).abs() < 0.5, "poisson(200) mean {mean}");

    // Pareto(x_min 1, alpha 3): mean alpha/(alpha-1) = 1.5, support >= 1.
    let mut rng = SimRng::new(1005);
    let xs: Vec<f64> = (0..n).map(|_| rng.pareto(1.0, 3.0)).collect();
    assert!(xs.iter().all(|&x| x >= 1.0));
    let mean = xs.iter().sum::<f64>() / n as f64;
    assert!((mean - 1.5).abs() < 0.03, "pareto mean {mean}");

    // Lognormal(0, 0.5): mean exp(sigma^2/2).
    let mut rng = SimRng::new(1006);
    let xs: Vec<f64> = (0..n).map(|_| rng.lognormal(0.0, 0.5)).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let expect = (0.125f64).exp();
    assert!((mean - expect).abs() < 0.02, "lognormal mean {mean}");
}

/// AR(1) lag-1 autocorrelation tracks phi; stationary variance sigma^2.
#[test]
fn ar1_lag1_autocorrelation() {
    for phi in [0.3, 0.6, 0.9] {
        let mut rng = SimRng::new(2000 + (phi * 10.0) as u64);
        let mut ar = Ar1::new(phi, 2.0, &mut rng);
        let xs: Vec<f64> = (0..200_000).map(|_| ar.step(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((var - 4.0).abs() < 0.15, "phi {phi}: var {var}");
        let lag1 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / ((xs.len() - 1) as f64 * var);
        assert!((lag1 - phi).abs() < 0.02, "phi {phi}: lag1 {lag1}");
    }
}

/// The determinism contracts the rest of the workspace leans on: same
/// seed, same stream; forked streams diverge; clones advance in step.
#[test]
fn replay_contracts_hold_on_new_core() {
    let mut a = SimRng::new(123);
    let mut b = SimRng::new(123);
    let mut c = a.clone();
    for _ in 0..1000 {
        let va = a.uniform();
        assert!(va == b.uniform());
        assert!(va == c.uniform());
    }
    let mut p = SimRng::new(9);
    let mut f0 = p.fork(0);
    let mut f1 = p.fork(1);
    let same = (0..256).filter(|_| f0.uniform() == f1.uniform()).count();
    assert!(same < 4, "forked streams overlap: {same}");
}
