//! Property-based tests over the statistics toolkit.

use proplite::prelude::*;
use vstats::bootstrap::bootstrap_ci;
use vstats::describe::{ecdf, histogram, mean, quantile, BoxSummary, Summary};
use vstats::htest::kruskal::kruskal_wallis;
use vstats::htest::mannwhitney::mann_whitney_u;
use vstats::htest::shapiro::shapiro_wilk;
use vstats::kappa::cohens_kappa;
use vstats::{confirm_curve, quantile_ci};

fn finite_vec(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    vec_of(-1e9f64..1e9, n)
}

prop_cases! {
    #![config(Config::with_cases(64))]

    #[test]
    fn quantile_bounded_and_monotone(xs in finite_vec(1..300)) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&xs, i as f64 / 20.0);
            prop_assert!(q >= min - 1e-9 && q <= max + 1e-9);
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn summary_internal_consistency(xs in finite_vec(2..300)) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min <= s.box_summary.p1 + 1e-9);
        prop_assert!(s.box_summary.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        let b = BoxSummary::from_samples(&xs);
        prop_assert_eq!(b, s.box_summary);
    }

    #[test]
    fn ecdf_is_a_cdf(xs in finite_vec(1..200)) {
        let e = ecdf(&xs);
        prop_assert_eq!(e.len(), xs.len());
        prop_assert!((e.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in e.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_conserves_count(xs in finite_vec(0..200), bins in 1usize..50) {
        let h = histogram(&xs, -1e9, 1e9, bins);
        prop_assert_eq!(h.len(), bins);
        prop_assert_eq!(h.iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn kappa_bounds_and_identity(labels in vec_of(0u8..4, 2..100)) {
        prop_assert_eq!(cohens_kappa(&labels, &labels), 1.0);
        // Against a shifted copy, kappa stays within [-1, 1].
        let mut other = labels.clone();
        other.rotate_left(1);
        let k = cohens_kappa(&labels, &other);
        prop_assert!((-1.0..=1.0).contains(&k), "kappa {}", k);
    }

    #[test]
    fn mann_whitney_p_valid_and_symmetric(
        a in finite_vec(3..60),
        b in finite_vec(3..60),
    ) {
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        // U1 + U2 = n1 * n2.
        prop_assert!((r1.u + r2.u - (a.len() * b.len()) as f64).abs() < 1e-6);
    }

    #[test]
    fn kruskal_p_valid(groups in vec_of(finite_vec(2..30), 2..5)) {
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let r = kruskal_wallis(&refs);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.h.is_finite());
    }

    #[test]
    fn shapiro_w_in_unit_interval(xs in vec_of(-1e6f64..1e6, 3..500)) {
        // Need a non-degenerate sample.
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max > min);
        let r = shapiro_wilk(&xs);
        prop_assert!(r.w > 0.0 && r.w <= 1.0, "W {}", r.w);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn bootstrap_brackets_reasonably(xs in finite_vec(5..100), seed in 0u64..100) {
        let ci = bootstrap_ci(&xs, mean, 200, 0.95, seed);
        prop_assert!(ci.lower <= ci.upper);
        // The point estimate need not be inside a percentile CI for
        // pathological data, but for the mean of bounded data it is.
        prop_assert!(ci.lower <= ci.estimate + 1e-6 && ci.estimate <= ci.upper + 1e-6);
    }

    #[test]
    fn quantile_ci_nesting(xs in finite_vec(30..200)) {
        // A 99% CI contains the 90% CI for the same quantile.
        if let (Some(lo), Some(hi)) = (
            quantile_ci(&xs, 0.5, 0.90),
            quantile_ci(&xs, 0.5, 0.99),
        ) {
            prop_assert!(hi.lower <= lo.lower + 1e-9);
            prop_assert!(hi.upper >= lo.upper - 1e-9);
        }
    }

    #[test]
    fn confirm_curve_shape(xs in finite_vec(1..120)) {
        let curve = confirm_curve(&xs, 0.5, 0.95);
        prop_assert_eq!(curve.len(), xs.len());
        for (i, pt) in curve.iter().enumerate() {
            prop_assert_eq!(pt.n, i + 1);
            if let Some(ci) = pt.ci {
                prop_assert!(ci.lower <= pt.estimate && pt.estimate <= ci.upper);
            }
        }
    }
}
