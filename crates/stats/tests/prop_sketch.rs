//! Property-based tests over the streaming quantile sketch.
//!
//! The sketch backs the million-tenant campaign aggregator, so its
//! contracts are determinism contracts: folding the same multiset
//! through the same pane structure must be bit-identical no matter how
//! the panes were computed, and quantiles must stay within the
//! advertised error of the exact `describe` path.

use proplite::prelude::*;
use vstats::describe::quantile;
use vstats::sketch::{Coverage, Sketch, SketchConfig};

/// Bandwidth-like positive samples within the bandwidth config's range.
fn bw_vec(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    vec_of(1e6f64..1e12, n)
}

/// Fold `xs` pane by pane (`pane` samples each), merging pane accums
/// in pane order — the exact shape the campaign driver uses.
fn pane_fold(xs: &[f64], pane: usize) -> Sketch {
    let mut whole = Sketch::new(SketchConfig::bandwidth_bps());
    for chunk in xs.chunks(pane.max(1)) {
        let mut acc = Sketch::new(SketchConfig::bandwidth_bps());
        for &x in chunk {
            acc.push(x);
        }
        assert!(whole.merge(&acc));
    }
    whole
}

fn encode(s: &Sketch) -> Vec<u8> {
    let mut b = Vec::new();
    s.encode_into(&mut b);
    b
}

prop_cases! {
    #![config(Config::with_cases(48))]

    #[test]
    fn pane_merge_is_bit_deterministic(xs in bw_vec(1..400), pane in 1usize..64) {
        // Two identical pane folds are byte-identical — the property
        // that makes campaign reports diffable across worker counts.
        let a = pane_fold(&xs, pane);
        let b = pane_fold(&xs, pane);
        prop_assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn pane_structure_preserves_the_multiset(xs in bw_vec(1..400), pane in 1usize..64) {
        // Different pane sizes change float-sum rounding (last-ulp) but
        // never the counted multiset: n, min, max, bucket occupancy,
        // and therefore every quantile, are pane-size invariant.
        let serial = pane_fold(&xs, xs.len());
        let paned = pane_fold(&xs, pane);
        prop_assert_eq!(serial.n(), paned.n());
        prop_assert_eq!(serial.min().to_bits(), paned.min().to_bits());
        prop_assert_eq!(serial.max().to_bits(), paned.max().to_bits());
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let qs = serial.quantile(p).unwrap();
            let qp = paned.quantile(p).unwrap();
            prop_assert_eq!(qs.to_bits(), qp.to_bits(), "p={}", p);
        }
        let rel = (serial.mean() - paned.mean()).abs() / serial.mean().abs().max(1e-300);
        prop_assert!(rel < 1e-12, "means drift only in rounding: {}", rel);
    }

    #[test]
    fn small_n_quantiles_are_bit_pinned_to_describe(xs in bw_vec(1..500)) {
        // Below the exact-buffer cap the sketch IS the exact estimator.
        let s = pane_fold(&xs, 37);
        prop_assert!(s.is_exact());
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let want = quantile(&xs, p);
            let got = s.quantile(p).unwrap();
            prop_assert_eq!(got.to_bits(), want.to_bits(), "p={}", p);
        }
    }

    #[test]
    fn overflowed_quantiles_bracket_the_order_statistics(xs in bw_vec(1100..2200)) {
        // Past the cap the histogram takes over. The guarantee is rank-
        // aware: the estimate lands within one log-bucket of the order
        // statistics bracketing the requested rank. (A plain relative-
        // error bound against the interpolated exact quantile does not
        // exist — adjacent samples can be arbitrarily far apart.)
        let s = pane_fold(&xs, 256);
        prop_assert!(!s.is_exact());
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let cushion = 1.0 + 2.0 * s.config().rel_error_bound();
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let h = p * (sorted.len() - 1) as f64;
            let lo_stat = sorted[h.floor() as usize];
            let hi_stat = sorted[(h.floor() as usize + 1).min(sorted.len() - 1)];
            let got = s.quantile(p).unwrap();
            prop_assert!(
                got >= lo_stat / cushion && got <= hi_stat * cushion,
                "p={} got={} bracket=[{}, {}]", p, got, lo_stat, hi_stat
            );
        }
    }

    #[test]
    fn encode_decode_roundtrips(xs in bw_vec(0..1500), pane in 1usize..200) {
        let s = pane_fold(&xs, pane);
        let bytes = encode(&s);
        let mut at = 0;
        let back = Sketch::decode(&bytes, &mut at).expect("decode");
        prop_assert_eq!(at, bytes.len());
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn decode_rejects_every_truncation(xs in bw_vec(0..100)) {
        let s = pane_fold(&xs, 16);
        let bytes = encode(&s);
        for cut in 0..bytes.len() {
            let mut at = 0;
            prop_assert!(Sketch::decode(&bytes[..cut], &mut at).is_none(), "cut={}", cut);
        }
    }

    #[test]
    fn coverage_merge_is_order_free(parts in vec_of((0u64..1000, 0u64..1000, 0u64..50), 0..20)) {
        let mut fwd = Coverage::default();
        let mut rev = Coverage::default();
        for &(e, o, g) in &parts {
            let mut c = Coverage::default();
            c.add(e, o.min(e), g);
            fwd.merge(&c);
        }
        for &(e, o, g) in parts.iter().rev() {
            let mut c = Coverage::default();
            c.add(e, o.min(e), g);
            rev.merge(&c);
        }
        prop_assert_eq!(fwd, rev);
        prop_assert!(fwd.coverage() >= 0.0 && fwd.coverage() <= 1.0);
    }
}
