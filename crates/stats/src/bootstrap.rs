//! Percentile bootstrap confidence intervals.
//!
//! A complement to the order-statistic CIs of [`crate::ci`]: works for
//! *any* statistic (means, trimmed means, coefficients of variation,
//! slowdown ratios), at the price of resampling cost and an explicit
//! seed. Used by the reporting layer when the statistic of interest is
//! not a plain quantile.
//!
//! ## Parallel resampling
//!
//! Replicate `r` draws from its own RNG stream,
//! `SimRng::new(derive_seed(seed, r))` — not from one sequential
//! stream — so replicates are independent of execution order and the
//! resample loop shards across [`exec`] workers with **bit-identical**
//! CIs at any worker count. Each worker reuses a single scratch buffer
//! across all replicates it runs (no per-replicate allocation).

use netsim::rng::{derive_seed, SimRng};

/// A bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Statistic computed on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Nominal confidence level.
    pub confidence: f64,
    /// Number of resamples drawn.
    pub resamples: usize,
}

/// Percentile bootstrap CI for `statistic` over `samples`.
///
/// * `resamples` — number of bootstrap replicates (1000+ recommended).
/// * `conf` — confidence level, e.g. 0.95.
/// * `seed` — RNG seed (deterministic output).
pub fn bootstrap_ci<F>(
    samples: &[f64],
    statistic: F,
    resamples: usize,
    conf: f64,
    seed: u64,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    bootstrap_ci_jobs(samples, statistic, resamples, conf, seed, exec::current_jobs())
}

/// [`bootstrap_ci`] with an explicit worker count. The CI is
/// bit-identical at any `jobs` (see the module docs).
pub fn bootstrap_ci_jobs<F>(
    samples: &[f64],
    statistic: F,
    resamples: usize,
    conf: f64,
    seed: u64,
    jobs: usize,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    assert!(!samples.is_empty(), "bootstrap of empty sample");
    assert!(resamples >= 2, "need at least two resamples");
    assert!(conf > 0.0 && conf < 1.0, "confidence must be in (0, 1)");
    let n = samples.len();
    let mut replicates = exec::par_map_with(
        jobs,
        resamples,
        // One scratch resample buffer per worker, reused across every
        // replicate that worker runs.
        |_worker| vec![0.0f64; n],
        |buf, r| {
            let mut rng = SimRng::new(derive_seed(seed, r as u64));
            for slot in buf.iter_mut() {
                *slot = samples[rng.index(n)];
            }
            statistic(buf)
        },
    );
    replicates.sort_by(|a, b| a.total_cmp(b));
    let alpha = 1.0 - conf;
    let lower = crate::describe::quantile_sorted(&replicates, alpha / 2.0);
    let upper = crate::describe::quantile_sorted(&replicates, 1.0 - alpha / 2.0);
    BootstrapCi {
        estimate: statistic(samples),
        lower,
        upper,
        confidence: conf,
        resamples,
    }
}

/// Moving-block bootstrap CI for autocorrelated series.
///
/// The plain bootstrap assumes exchangeable (iid) samples — exactly the
/// assumption cloud time series violate (Section 3.1's sample-to-sample
/// correlation; finding F5.4). The moving-block variant resamples
/// contiguous blocks of length `block_len`, preserving the short-range
/// dependence structure inside each block, so the CI widths reflect the
/// *effective* (smaller) sample size of a correlated series.
///
/// A common block-length default is `n^(1/3)`, available via
/// [`default_block_len`].
pub fn block_bootstrap_ci<F>(
    samples: &[f64],
    statistic: F,
    block_len: usize,
    resamples: usize,
    conf: f64,
    seed: u64,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    block_bootstrap_ci_jobs(samples, statistic, block_len, resamples, conf, seed, exec::current_jobs())
}

/// [`block_bootstrap_ci`] with an explicit worker count. The CI is
/// bit-identical at any `jobs` (see the module docs).
pub fn block_bootstrap_ci_jobs<F>(
    samples: &[f64],
    statistic: F,
    block_len: usize,
    resamples: usize,
    conf: f64,
    seed: u64,
    jobs: usize,
) -> BootstrapCi
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    assert!(!samples.is_empty(), "bootstrap of empty sample");
    assert!(
        block_len >= 1 && block_len <= samples.len(),
        "block length must fit the sample"
    );
    assert!(resamples >= 2, "need at least two resamples");
    assert!(conf > 0.0 && conf < 1.0, "confidence must be in (0, 1)");
    let n = samples.len();
    let n_starts = n - block_len + 1;
    let blocks_needed = n.div_ceil(block_len);
    let mut replicates = exec::par_map_with(
        jobs,
        resamples,
        |_worker| Vec::with_capacity(blocks_needed * block_len),
        |buf: &mut Vec<f64>, r| {
            let mut rng = SimRng::new(derive_seed(seed, r as u64));
            buf.clear();
            for _ in 0..blocks_needed {
                let start = rng.index(n_starts);
                buf.extend_from_slice(&samples[start..start + block_len]);
            }
            buf.truncate(n);
            statistic(buf)
        },
    );
    replicates.sort_by(|a, b| a.total_cmp(b));
    let alpha = 1.0 - conf;
    BootstrapCi {
        estimate: statistic(samples),
        lower: crate::describe::quantile_sorted(&replicates, alpha / 2.0),
        upper: crate::describe::quantile_sorted(&replicates, 1.0 - alpha / 2.0),
        confidence: conf,
        resamples,
    }
}

/// The `n^(1/3)` block-length rule of thumb (at least 1).
pub fn default_block_len(n: usize) -> usize {
    ((n as f64).powf(1.0 / 3.0).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{mean, median};

    fn uniform_samples(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| rng.uniform() * 100.0).collect()
    }

    #[test]
    fn mean_ci_brackets_true_mean() {
        let xs = uniform_samples(500, 1);
        let ci = bootstrap_ci(&xs, mean, 1000, 0.95, 42);
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        // True mean 50; CI of a 500-sample mean should be tight-ish.
        assert!(ci.contains_value(50.0), "{ci:?}");
        assert!(ci.upper - ci.lower < 12.0);
    }

    #[test]
    fn median_ci_works_too() {
        let xs = uniform_samples(300, 2);
        let ci = bootstrap_ci(&xs, median, 800, 0.95, 7);
        assert!(ci.lower <= ci.upper);
        assert!(ci.contains_value(ci.estimate));
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = uniform_samples(50, 3);
        let a = bootstrap_ci(&xs, mean, 500, 0.95, 9);
        let b = bootstrap_ci(&xs, mean, 500, 0.95, 9);
        assert_eq!(a, b);
        let c = bootstrap_ci(&xs, mean, 500, 0.95, 10);
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let xs = uniform_samples(100, 4);
        let w90 = {
            let ci = bootstrap_ci(&xs, mean, 2000, 0.90, 5);
            ci.upper - ci.lower
        };
        let w99 = {
            let ci = bootstrap_ci(&xs, mean, 2000, 0.99, 5);
            ci.upper - ci.lower
        };
        assert!(w99 > w90);
    }

    impl BootstrapCi {
        fn contains_value(&self, v: f64) -> bool {
            v >= self.lower && v <= self.upper
        }
    }

    /// AR(1) series for block-bootstrap tests.
    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut xs = vec![0.0f64];
        for _ in 1..n {
            let e: f64 = rng.uniform() - 0.5;
            xs.push(phi * xs.last().unwrap() + e);
        }
        xs.iter().map(|x| 100.0 + x).collect()
    }

    #[test]
    fn block_bootstrap_is_wider_on_correlated_data() {
        // Strongly autocorrelated series: the iid bootstrap underrates
        // the uncertainty of the mean; the block bootstrap does not.
        let xs = ar1_series(400, 0.9, 5);
        let iid = bootstrap_ci(&xs, mean, 1500, 0.95, 1);
        let blocked = block_bootstrap_ci(&xs, mean, 20, 1500, 0.95, 1);
        assert!(
            blocked.upper - blocked.lower > 1.5 * (iid.upper - iid.lower),
            "blocked [{:.3},{:.3}] vs iid [{:.3},{:.3}]",
            blocked.lower,
            blocked.upper,
            iid.lower,
            iid.upper
        );
    }

    #[test]
    fn block_len_one_recovers_iid_behaviour() {
        let xs = ar1_series(200, 0.0, 6);
        let iid = bootstrap_ci(&xs, mean, 1000, 0.95, 2);
        let blocked = block_bootstrap_ci(&xs, mean, 1, 1000, 0.95, 3);
        let w_iid = iid.upper - iid.lower;
        let w_blk = blocked.upper - blocked.lower;
        assert!((w_blk / w_iid - 1.0).abs() < 0.35, "iid {w_iid} blk {w_blk}");
    }

    #[test]
    fn block_bootstrap_brackets_and_is_deterministic() {
        let xs = ar1_series(150, 0.5, 7);
        let block = default_block_len(xs.len());
        let a = block_bootstrap_ci(&xs, median, block, 500, 0.95, 9);
        let b = block_bootstrap_ci(&xs, median, block, 500, 0.95, 9);
        assert_eq!(a, b);
        assert!(a.lower <= a.upper);
    }

    #[test]
    fn bootstrap_ci_is_bit_identical_at_any_worker_count() {
        let xs = uniform_samples(300, 8);
        let one = bootstrap_ci_jobs(&xs, mean, 1000, 0.95, 11, 1);
        for jobs in [2usize, 8] {
            let wide = bootstrap_ci_jobs(&xs, mean, 1000, 0.95, 11, jobs);
            assert_eq!(one.lower.to_bits(), wide.lower.to_bits(), "jobs={jobs}");
            assert_eq!(one.upper.to_bits(), wide.upper.to_bits(), "jobs={jobs}");
            assert_eq!(one.estimate.to_bits(), wide.estimate.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn block_bootstrap_ci_is_bit_identical_at_any_worker_count() {
        let xs = ar1_series(250, 0.7, 12);
        let block = default_block_len(xs.len());
        let one = block_bootstrap_ci_jobs(&xs, median, block, 800, 0.95, 13, 1);
        for jobs in [2usize, 8] {
            let wide = block_bootstrap_ci_jobs(&xs, median, block, 800, 0.95, 13, jobs);
            assert_eq!(one.lower.to_bits(), wide.lower.to_bits(), "jobs={jobs}");
            assert_eq!(one.upper.to_bits(), wide.upper.to_bits(), "jobs={jobs}");
        }
    }

    #[test]
    fn replicate_streams_are_decoupled_from_resample_count() {
        // Per-replicate derived seeds: the first 500 replicates of a
        // 1000-resample run are the 500-resample run's replicates, so
        // adding repetitions never perturbs existing ones (the same
        // property the campaign layer guarantees for pairs).
        let xs = uniform_samples(80, 9);
        let a = bootstrap_ci(&xs, mean, 500, 0.95, 21);
        let b = bootstrap_ci(&xs, mean, 500, 0.95, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn default_block_len_rule() {
        assert_eq!(default_block_len(1), 1);
        assert_eq!(default_block_len(27), 3);
        assert_eq!(default_block_len(1000), 10);
    }
}
