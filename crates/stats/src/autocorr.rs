//! Autocovariance and autocorrelation.
//!
//! The paper's emulation methodology notes that the Ballani study
//! "reveals no autocovariance information" (Section 2.1) — which is why
//! uniform resampling is the honest choice there — while its own traces
//! *do* show strong sample-to-sample correlation. These helpers quantify
//! that, and feed the Ljung–Box independence test.

use crate::describe::mean;

/// Sample autocovariance at `lag` (biased, 1/n normalization, the
/// standard convention for ACF estimation).
pub fn autocovariance(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(xs);
    (0..n - lag)
        .map(|i| (xs[i] - m) * (xs[i + lag] - m))
        .sum::<f64>()
        / n as f64
}

/// Sample autocorrelation at `lag` (`rho_0 = 1`). Returns 0 when the
/// series has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let c0 = autocovariance(xs, 0);
    if c0 == 0.0 {
        return 0.0;
    }
    autocovariance(xs, lag) / c0
}

/// Autocorrelation function for lags `0..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let m = 2.5f64;
        let expected = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / 4.0;
        assert!((autocovariance(&xs, 0) - expected).abs() < 1e-12);
        assert_eq!(autocorrelation(&xs, 0), 1.0);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn iid_noise_has_near_zero_acf() {
        use netsim::rng::SimRng;
        let mut rng = SimRng::new(9);
        let xs: Vec<f64> = (0..5000).map(|_| rng.uniform()).collect();
        for k in 1..10 {
            assert!(autocorrelation(&xs, k).abs() < 0.05, "lag {k}");
        }
    }

    #[test]
    fn constant_series_is_safe() {
        let xs = [5.0; 20];
        assert_eq!(autocorrelation(&xs, 1), 0.0);
    }

    #[test]
    fn out_of_range_lag_is_zero() {
        assert_eq!(autocovariance(&[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn acf_vector_shape() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = acf(&xs, 5);
        assert_eq!(a.len(), 6);
        assert_eq!(a[0], 1.0);
        // Strong positive correlation in a trend.
        assert!(a[1] > 0.9);
    }
}
