//! Descriptive statistics matching the paper's reporting style.
//!
//! Finding F2.2 is that most studies "do not report what performance
//! measures are reported (i.e., mean, median) [or] minimal statistical
//! data (i.e., standard deviation, quartiles)". The toolkit here makes
//! that cheap: [`Summary`] carries the full set, and [`BoxSummary`]
//! matches the paper's box-and-whisker plots (1st, 25th, 50th, 75th,
//! 99th percentiles — see Figures 2, 4, 5, 9, 16, 17).

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 denominator; 0 for fewer than two values).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation `σ/μ` (Figure 6's right panel), as a
/// fraction. Returns 0 when the mean is 0.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Quantile with linear interpolation between order statistics
/// (Hyndman–Fan type 7, the default of R and NumPy). `p` in `[0, 1]`.
/// Panics on empty input.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, p)
}

/// Quantile of an already-sorted slice (ascending).
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = h - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The paper's box-and-whisker summary: whiskers at the 1st and 99th
/// percentiles, box at the quartiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    /// 1st percentile (lower whisker).
    pub p1: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 99th percentile (upper whisker).
    pub p99: f64,
}

impl BoxSummary {
    /// Compute from raw samples. Panics on empty input.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        BoxSummary {
            p1: quantile_sorted(&sorted, 0.01),
            p25: quantile_sorted(&sorted, 0.25),
            p50: quantile_sorted(&sorted, 0.50),
            p75: quantile_sorted(&sorted, 0.75),
            p99: quantile_sorted(&sorted, 0.99),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Whisker span (p99 − p1).
    pub fn span(&self) -> f64 {
        self.p99 - self.p1
    }
}

/// Full descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (fraction).
    pub cov: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Percentile box.
    pub box_summary: BoxSummary,
}

impl Summary {
    /// Compute from raw samples. Panics on empty input.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            cov: coefficient_of_variation(xs),
            min: sorted[0],
            // detlint:allow(D5, D11) -- guarded: the assert above rejects empty samples, so `last()` is Some on every path a campaign can reach
            max: *sorted.last().unwrap(),
            box_summary: BoxSummary {
                p1: quantile_sorted(&sorted, 0.01),
                p25: quantile_sorted(&sorted, 0.25),
                p50: quantile_sorted(&sorted, 0.50),
                p75: quantile_sorted(&sorted, 0.75),
                p99: quantile_sorted(&sorted, 0.99),
            },
        }
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.box_summary.p50
    }
}

/// A [`Summary`] over a sample with known holes — the gap-aware form
/// used for campaigns that lost probes or stalled mid-run.
///
/// Dropping lost intervals and summarizing the survivors as if nothing
/// happened silently biases week-long campaigns (the gaps are rarely
/// independent of the value being measured: stalls eat the *low*
/// samples). `GapAwareSummary` keeps the survivor statistics but
/// carries the accounting needed to decide whether they are
/// trustworthy: how many observations were expected, how many arrived,
/// and how many distinct gaps the trace had.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapAwareSummary {
    /// Summary over the surviving samples (`None` if none survived).
    pub summary: Option<Summary>,
    /// Observations the campaign would have produced with no faults.
    pub expected_n: usize,
    /// Observations that actually arrived.
    pub observed_n: usize,
    /// Number of distinct gaps in the trace.
    pub gap_count: usize,
}

impl GapAwareSummary {
    /// Build from surviving samples plus the gap accounting.
    /// `expected_n` must be at least `xs.len()`.
    pub fn from_samples(xs: &[f64], expected_n: usize, gap_count: usize) -> Self {
        assert!(
            expected_n >= xs.len(),
            "expected_n {} < observed {}",
            expected_n,
            xs.len()
        );
        GapAwareSummary {
            summary: (!xs.is_empty()).then(|| Summary::from_samples(xs)),
            expected_n,
            observed_n: xs.len(),
            gap_count,
        }
    }

    /// A complete (gap-free) summary.
    pub fn complete(xs: &[f64]) -> Self {
        Self::from_samples(xs, xs.len(), 0)
    }

    /// Fraction of expected observations that arrived, in `[0, 1]`
    /// (1.0 for an empty expected set: nothing was lost).
    pub fn coverage(&self) -> f64 {
        if self.expected_n == 0 {
            1.0
        } else {
            self.observed_n as f64 / self.expected_n as f64
        }
    }

    /// Whether any data was lost.
    pub fn is_degraded(&self) -> bool {
        self.observed_n < self.expected_n
    }
}

/// Empirical CDF: sorted `(value, F(value))` points (Figure 6 left).
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Fixed-width histogram over `[lo, hi]` with `bins` buckets; values
/// outside the range are clamped into the edge buckets. Returns counts.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0 && hi > lo, "histogram needs bins and a positive range");
    let mut counts = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((coefficient_of_variation(&xs) - std_dev(&xs) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(quantile(&[3.0], 0.75), 3.0);
    }

    #[test]
    fn quantile_matches_numpy_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for p in [0.1, 0.33, 0.5, 0.9] {
            assert_eq!(quantile(&a, p), quantile(&b, p));
        }
    }

    #[test]
    fn box_summary_ordering_invariant() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 7919.0) % 100.0).collect();
        let b = BoxSummary::from_samples(&xs);
        assert!(b.p1 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p99);
        assert!(b.iqr() >= 0.0 && b.span() >= b.iqr());
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_samples(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_properties() {
        let xs = [3.0, 1.0, 2.0];
        let e = ecdf(&xs);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0], (1.0, 1.0 / 3.0));
        assert_eq!(e[2], (3.0, 1.0));
        assert!(e.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let xs = [-1.0, 0.5, 1.5, 2.5, 99.0];
        let h = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(h, vec![2, 1, 2]);
        assert_eq!(h.iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        Summary::from_samples(&[]);
    }

    #[test]
    fn gap_aware_summary_tracks_coverage() {
        let xs: Vec<f64> = (1..=80).map(|i| i as f64).collect();
        let g = GapAwareSummary::from_samples(&xs, 100, 3);
        assert!((g.coverage() - 0.8).abs() < 1e-12);
        assert!(g.is_degraded());
        assert_eq!(g.gap_count, 3);
        assert_eq!(g.summary.unwrap().n, 80);

        let full = GapAwareSummary::complete(&xs);
        assert_eq!(full.coverage(), 1.0);
        assert!(!full.is_degraded());
    }

    #[test]
    fn gap_aware_summary_survives_total_loss() {
        let g = GapAwareSummary::from_samples(&[], 50, 1);
        assert!(g.summary.is_none());
        assert_eq!(g.coverage(), 0.0);
        assert!(g.is_degraded());
        // Degenerate: nothing expected, nothing observed.
        let none = GapAwareSummary::from_samples(&[], 0, 0);
        assert_eq!(none.coverage(), 1.0);
    }

    #[test]
    fn total_cmp_sorts_tolerate_nan() {
        // The NaN-unsafe partial_cmp().unwrap() pattern used to panic
        // here; total_cmp must not (NaN sorts last).
        let xs = [3.0, f64::NAN, 1.0];
        let b = BoxSummary::from_samples(&xs);
        assert!(b.p1.is_finite() && b.p1 >= 1.0);
        let e = ecdf(&xs);
        assert_eq!(e[0].0, 1.0);
        assert_eq!(e[1].0, 3.0);
    }
}
