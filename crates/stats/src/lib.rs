#![deny(missing_docs)]

//! # vstats — statistics for variability analysis
//!
//! The statistics toolkit behind the reproduction of *"Is Big Data
//! Performance Reproducible in Modern Cloud Networks?"* (Uta et al.,
//! NSDI 2020). The paper's methodological core is statistical:
//!
//! * **Nonparametric confidence intervals** for medians and tail
//!   quantiles via binomial order statistics (Le Boudec) — [`ci`].
//! * **CONFIRM** analysis (Maricq et al., OSDI'18): how many repetitions
//!   until the CI is within a target error bound — [`confirm`].
//! * **Cohen's Kappa** for the two-reviewer literature survey —
//!   [`kappa`].
//! * The **assumption checks** of finding F5.4: normality
//!   (Shapiro–Wilk), independence (Mann–Whitney U on split halves,
//!   Ljung–Box on autocorrelation), stationarity (augmented
//!   Dickey–Fuller) — [`htest`].
//! * **Descriptive statistics** matching the paper's plots: percentile
//!   boxes with 1st/99th whiskers, CDFs, coefficients of variation —
//!   [`describe`].
//! * **Bootstrap** CIs and one-way **ANOVA** for robust comparisons —
//!   [`bootstrap`], [`htest::anova`].
//! * **Streaming sketches** for million-tenant campaigns: fixed-memory
//!   deterministic quantiles, moments and coverage counters that are
//!   bit-pinned to the exact path at small N — [`sketch`].
//!
//! All routines are dependency-light (`rand` only, for the bootstrap)
//! and deterministic where randomness is involved (explicit seeds).

pub mod autocorr;
pub mod bootstrap;
pub mod ci;
pub mod confirm;
pub mod describe;
pub mod dist;
pub mod effect;
pub mod htest;
pub mod kappa;
pub mod sketch;

pub use autocorr::{autocorrelation, autocovariance};
pub use bootstrap::{block_bootstrap_ci, block_bootstrap_ci_jobs, bootstrap_ci, bootstrap_ci_jobs};
pub use ci::{quantile_ci, QuantileCi};
pub use confirm::{confirm_curve, repetitions_needed, ConfirmPoint};
pub use describe::{
    coefficient_of_variation, mean, median, quantile, std_dev, BoxSummary, GapAwareSummary, Summary,
};
pub use kappa::cohens_kappa;
pub use sketch::{Coverage, Sketch, SketchConfig};
