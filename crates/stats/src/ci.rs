//! Nonparametric confidence intervals for quantiles.
//!
//! The paper's CI machinery (Figures 3, 13, 19) is the distribution-free
//! binomial order-statistic method of Le Boudec, *Performance Evaluation
//! of Computer and Communication Systems* (2011), also used by CONFIRM
//! (Maricq et al., OSDI'18): for `n` iid samples, the number of samples
//! below the true `p`-quantile is Binomial(n, p), so ranks
//!
//! ```text
//! lo = floor(n·p − z·sqrt(n·p·(1−p)))        (1-indexed, clamped ≥ 1)
//! hi = ceil (n·p + z·sqrt(n·p·(1−p))) + 1    (clamped ≤ n)
//! ```
//!
//! bound the quantile with ≈`conf` probability, *without any normality
//! assumption about the data itself*. The intervals are asymmetric for
//! tail quantiles — exactly why the paper can bound the 90th percentile
//! of TPC-DS Q68 (Figure 3b).
//!
//! For small `n` the required ranks may not exist (e.g. the paper
//! footnotes that "three repetitions are insufficient to calculate
//! CIs") — [`quantile_ci`] returns `None` in that case.

use crate::describe::quantile_sorted;
use crate::dist::normal_quantile;

/// A nonparametric CI for a quantile estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileCi {
    /// Point estimate (interpolated order statistic).
    pub estimate: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// Nominal confidence level (e.g. 0.95).
    pub confidence: f64,
    /// Sample size used.
    pub n: usize,
}

impl QuantileCi {
    /// CI width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Half-width relative to the estimate (the paper's "error bound",
    /// e.g. Figure 13's 1% bounds). Uses the larger one-sided distance,
    /// as the interval is asymmetric. Returns `f64::INFINITY` if the
    /// estimate is 0.
    pub fn relative_error(&self) -> f64 {
        if self.estimate == 0.0 {
            return f64::INFINITY;
        }
        let lo = (self.estimate - self.lower).abs();
        let hi = (self.upper - self.estimate).abs();
        lo.max(hi) / self.estimate.abs()
    }

    /// Does the interval contain `value`?
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Compute the 1-indexed order-statistic ranks `(lo, hi)` bounding the
/// `p`-quantile at level `conf`, or `None` if `n` is too small.
///
/// Uses exact binomial tail probabilities for `n <= 200` (the normal
/// approximation is too conservative for the small-n regime the paper
/// cares about — e.g. it would reject n = 6 for a 95% median CI, which
/// classically works) and the normal approximation above that.
pub fn ci_ranks(n: usize, p: f64, conf: f64) -> Option<(usize, usize)> {
    if n < 2 {
        return None;
    }
    let alpha = 1.0 - conf;
    if n <= 200 {
        // Exact: B ~ Binomial(n, p) counts samples below the quantile.
        // lo = largest rank with P(B <= lo-1) <= alpha/2;
        // hi = smallest rank with P(B >= hi) <= alpha/2.
        let cdf = binomial_cdf_table(n, p);
        let mut lo = 0usize;
        for l in 1..=n {
            if cdf[l - 1] <= alpha / 2.0 {
                lo = l;
            } else {
                break;
            }
        }
        let mut hi = 0usize;
        for h in (1..=n).rev() {
            // P(B >= h) = 1 - P(B <= h-1)
            if 1.0 - cdf[h - 1] <= alpha / 2.0 {
                hi = h;
            } else {
                break;
            }
        }
        if lo >= 1 && hi >= 1 && lo < hi {
            Some((lo, hi))
        } else {
            None
        }
    } else {
        let z = normal_quantile(0.5 + conf / 2.0);
        let nf = n as f64;
        let sd = (nf * p * (1.0 - p)).sqrt();
        let lo = (nf * p - z * sd).floor();
        let hi = (nf * p + z * sd).ceil() + 1.0;
        if lo < 1.0 || hi > nf {
            None
        } else {
            Some((lo as usize, hi as usize))
        }
    }
}

/// CDF table `P(B <= k)` for `k in 0..=n`, `B ~ Binomial(n, p)`.
fn binomial_cdf_table(n: usize, p: f64) -> Vec<f64> {
    use crate::dist::ln_gamma;
    let ln_n_fact = ln_gamma(n as f64 + 1.0);
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut acc = 0.0;
    (0..=n)
        .map(|k| {
            let kf = k as f64;
            let ln_pmf = ln_n_fact - ln_gamma(kf + 1.0) - ln_gamma((n - k) as f64 + 1.0)
                + kf * lp
                + (n as f64 - kf) * lq;
            acc += ln_pmf.exp();
            acc.min(1.0)
        })
        .collect()
}

/// Nonparametric CI for the `p`-quantile of `samples` at confidence
/// level `conf` (e.g. 0.95). Returns `None` when `n` is too small for
/// the requested level.
///
/// ```
/// use vstats::ci::quantile_ci;
///
/// // The paper's footnote: 3 repetitions cannot produce a 95% CI.
/// assert!(quantile_ci(&[1.0, 2.0, 3.0], 0.5, 0.95).is_none());
///
/// let runtimes: Vec<f64> = (1..=50).map(|i| 100.0 + (i % 7) as f64).collect();
/// let ci = quantile_ci(&runtimes, 0.5, 0.95).unwrap();
/// assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
/// assert!(ci.relative_error() < 0.03);
/// ```
pub fn quantile_ci(samples: &[f64], p: f64, conf: f64) -> Option<QuantileCi> {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p in (0,1) required");
    assert!(conf > 0.0 && conf < 1.0, "conf in (0,1) required");
    let n = samples.len();
    let (lo_rank, hi_rank) = ci_ranks(n, p, conf)?;
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(QuantileCi {
        estimate: quantile_sorted(&sorted, p),
        lower: sorted[lo_rank - 1],
        upper: sorted[hi_rank - 1],
        confidence: conf,
        n,
    })
}

/// Convenience: 95% CI for the median.
pub fn median_ci(samples: &[f64]) -> Option<QuantileCi> {
    quantile_ci(samples, 0.5, 0.95)
}

/// Minimum `n` for which a `conf`-level CI of the `p`-quantile exists
/// (smallest n where the binomial ranks are feasible).
pub fn min_samples_for_ci(p: f64, conf: f64) -> usize {
    (2..100_000)
        .find(|&n| ci_ranks(n, p, conf).is_some())
        // detlint:allow(D5) -- math: binomial ranks become feasible for every p/conf long before n = 100000
        .expect("no feasible n below 100000")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn three_repetitions_are_insufficient() {
        // The paper's footnote: 3 reps cannot produce a 95% median CI.
        assert!(quantile_ci(&seq(3), 0.5, 0.95).is_none());
        assert!(quantile_ci(&seq(5), 0.5, 0.95).is_none());
        // n = 6 is the classic minimum for a 95% median CI.
        assert!(quantile_ci(&seq(6), 0.5, 0.95).is_some());
        assert_eq!(min_samples_for_ci(0.5, 0.95), 6);
    }

    #[test]
    fn tail_quantiles_need_many_more_samples() {
        let n_med = min_samples_for_ci(0.5, 0.95);
        let n_p90 = min_samples_for_ci(0.9, 0.95);
        assert!(n_p90 > 3 * n_med, "median {n_med}, p90 {n_p90}");
        assert!(quantile_ci(&seq(10), 0.9, 0.95).is_none());
    }

    #[test]
    fn interval_brackets_estimate() {
        let xs = seq(50);
        let ci = quantile_ci(&xs, 0.5, 0.95).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.contains(ci.estimate));
        assert_eq!(ci.n, 50);
        assert!((ci.estimate - 25.5).abs() < 1e-9);
    }

    #[test]
    fn known_ranks_for_n_100_median() {
        // n=100, p=0.5, z=1.96: lo = floor(50 − 9.8) = 40,
        // hi = ceil(50 + 9.8) + 1 = 61.
        let xs = seq(100);
        let ci = quantile_ci(&xs, 0.5, 0.95).unwrap();
        assert_eq!(ci.lower, 40.0);
        assert_eq!(ci.upper, 61.0);
    }

    #[test]
    fn more_samples_tighten_the_interval() {
        // With values drawn from a fixed pseudo-random pattern, the CI
        // width should shrink roughly as 1/sqrt(n).
        let gen = |n: usize| -> Vec<f64> {
            (0..n).map(|i| ((i * 2654435761) % 1000) as f64).collect()
        };
        let w50 = quantile_ci(&gen(50), 0.5, 0.95).unwrap().width();
        let w500 = quantile_ci(&gen(500), 0.5, 0.95).unwrap().width();
        let w5000 = quantile_ci(&gen(5000), 0.5, 0.95).unwrap().width();
        assert!(w500 < w50);
        assert!(w5000 < w500);
    }

    #[test]
    fn coverage_is_close_to_nominal() {
        // Empirical check: CI for the median of Uniform(0,1) samples
        // should contain 0.5 about 95% of the time.
        use netsim::rng::SimRng;
        let mut rng = SimRng::new(1234);
        let mut covered = 0;
        let trials = 600;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..60).map(|_| rng.uniform()).collect();
            if quantile_ci(&xs, 0.5, 0.95).unwrap().contains(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate > 0.91 && rate <= 1.0, "coverage {rate}");
    }

    #[test]
    fn relative_error_tracks_asymmetry() {
        let ci = QuantileCi {
            estimate: 100.0,
            lower: 95.0,
            upper: 112.0,
            confidence: 0.95,
            n: 42,
        };
        assert!((ci.relative_error() - 0.12).abs() < 1e-12);
        assert_eq!(ci.width(), 17.0);
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let xs = seq(200);
        let w90 = quantile_ci(&xs, 0.5, 0.90).unwrap().width();
        let w99 = quantile_ci(&xs, 0.5, 0.99).unwrap().width();
        assert!(w99 > w90);
    }
}
