//! CONFIRM analysis (Maricq et al., OSDI'18) — Figure 13 machinery.
//!
//! CONFIRM answers: *how many repetitions does an experiment need before
//! its confidence interval is within a target error bound of the
//! estimate?* The paper runs it on K-Means (Google Cloud) and TPC-DS
//! Q65 (HPCCloud) and finds "it can take 70 repetitions or more to
//! achieve 95% confidence intervals within 1% of the measured median" —
//! far beyond the 3–10 repetitions common in the literature (Figure 1b).
//!
//! [`confirm_curve`] computes the estimate + CI for every prefix of the
//! measurement sequence (exactly how CONFIRM plots convergence);
//! [`repetitions_needed`] reports the first prefix length after which
//! the CI stays within the bound.

use crate::ci::{quantile_ci, QuantileCi};

/// One point of a CONFIRM convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfirmPoint {
    /// Number of repetitions used (prefix length).
    pub n: usize,
    /// Quantile estimate from the first `n` repetitions.
    pub estimate: f64,
    /// CI at this prefix, if computable.
    pub ci: Option<QuantileCi>,
}

impl ConfirmPoint {
    /// Is the CI within `err_frac` (e.g. 0.01 for 1%) of the estimate?
    pub fn within(&self, err_frac: f64) -> bool {
        self.ci
            .map(|ci| ci.relative_error() <= err_frac)
            .unwrap_or(false)
    }
}

/// Convergence curve: estimate + CI of the `p`-quantile for every
/// prefix `1..=samples.len()` of the measurement sequence.
pub fn confirm_curve(samples: &[f64], p: f64, conf: f64) -> Vec<ConfirmPoint> {
    (1..=samples.len())
        .map(|n| {
            let prefix = &samples[..n];
            let ci = quantile_ci(prefix, p, conf);
            let estimate = ci
                .map(|c| c.estimate)
                .unwrap_or_else(|| crate::describe::quantile(prefix, p));
            ConfirmPoint { n, estimate, ci }
        })
        .collect()
}

/// First number of repetitions after which the CI is within `err_frac`
/// of the estimate **and stays there** for every larger prefix of the
/// provided sequence. `None` if never achieved within the data.
///
/// Requiring stability (not just first crossing) is what makes the
/// analysis robust to the non-iid behaviour of Figure 19, where CIs
/// *widen* again as token-bucket budgets deplete.
pub fn repetitions_needed(samples: &[f64], p: f64, conf: f64, err_frac: f64) -> Option<usize> {
    let curve = confirm_curve(samples, p, conf);
    let mut candidate: Option<usize> = None;
    for pt in &curve {
        if pt.within(err_frac) {
            candidate.get_or_insert(pt.n);
        } else {
            candidate = None;
        }
    }
    candidate
}

/// Discretize a timestamped measurement stream into fixed windows and
/// return one **median per window** (finding F5.4: "discretize
/// performance evaluation into units of time, e.g., one hour. Gathering
/// median performance for each interval, and applying techniques such
/// as CONFIRM over large-numbers of gathered medians results in
/// statistically significant and realistic performance data").
///
/// Windows with no samples are skipped. Input need not be sorted.
pub fn discretize_medians(samples: &[(f64, f64)], window_s: f64) -> Vec<f64> {
    assert!(window_s > 0.0, "window must be positive");
    if samples.is_empty() {
        return Vec::new();
    }
    let mut buckets: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
    for &(t, v) in samples {
        buckets.entry((t / window_s).floor() as i64).or_default().push(v);
    }
    buckets
        .into_values()
        .map(|vals| crate::describe::median(&vals))
        .collect()
}

/// CONFIRM over window medians: discretize, then compute the
/// convergence curve of the median-of-medians. Large windows smooth out
/// unrepresentative bursts, as F5.4 recommends.
pub fn confirm_discretized(
    samples: &[(f64, f64)],
    window_s: f64,
    conf: f64,
) -> Vec<ConfirmPoint> {
    let medians = discretize_medians(samples, window_s);
    confirm_curve(&medians, 0.5, conf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn noisy_samples(n: usize, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| 100.0 * (1.0 + noise * (rng.uniform() - 0.5)))
            .collect()
    }

    #[test]
    fn curve_has_one_point_per_prefix() {
        let xs = noisy_samples(40, 0.1, 1);
        let curve = confirm_curve(&xs, 0.5, 0.95);
        assert_eq!(curve.len(), 40);
        assert_eq!(curve[0].n, 1);
        assert_eq!(curve[39].n, 40);
        // Small prefixes have no CI.
        assert!(curve[2].ci.is_none());
        assert!(curve[39].ci.is_some());
    }

    #[test]
    fn low_noise_converges_quickly_high_noise_slowly() {
        let quiet = noisy_samples(200, 0.02, 2);
        let loud = noisy_samples(200, 0.40, 2);
        let n_quiet = repetitions_needed(&quiet, 0.5, 0.95, 0.01).unwrap();
        let n_loud = repetitions_needed(&loud, 0.5, 0.95, 0.01);
        // 2% noise: 1% CI achievable quickly; 40% noise: much later or
        // never within 200 reps.
        assert!(n_quiet < 100, "quiet {n_quiet}");
        if let Some(n) = n_loud {
            assert!(n > n_quiet, "loud {n} quiet {n_quiet}");
        }
    }

    #[test]
    fn paper_scale_finding_seventy_reps() {
        // With ~10% spread (K-Means on Google Cloud scale), a 1% error
        // bound takes dozens of repetitions — the paper reports 70+.
        let xs = noisy_samples(300, 0.10, 7);
        let n = repetitions_needed(&xs, 0.5, 0.95, 0.01).unwrap();
        assert!(n > 20, "needed only {n}");
    }

    #[test]
    fn stability_requirement_rejects_transient_convergence() {
        // Construct a sequence that converges, then degrades (like the
        // budget-depletion effect of Figure 19).
        let mut xs = noisy_samples(60, 0.01, 3);
        xs.extend((0..60).map(|i| 100.0 + i as f64 * 2.0)); // drift
        let n = repetitions_needed(&xs, 0.5, 0.95, 0.01);
        // The drift destroys the bound at large n, so no stable point.
        assert!(n.is_none(), "got {n:?}");
    }

    #[test]
    fn discretize_produces_window_medians() {
        // Two windows: [0,10) holds {1,2,3}, [10,20) holds {10,20}.
        let samples = vec![(0.0, 1.0), (5.0, 3.0), (9.9, 2.0), (10.0, 10.0), (19.0, 20.0)];
        let med = discretize_medians(&samples, 10.0);
        assert_eq!(med, vec![2.0, 15.0]);
        assert!(discretize_medians(&[], 10.0).is_empty());
    }

    #[test]
    fn discretize_skips_empty_windows_and_ignores_order() {
        let samples = vec![(35.0, 7.0), (1.0, 1.0), (36.0, 9.0)];
        let med = discretize_medians(&samples, 10.0);
        assert_eq!(med, vec![1.0, 8.0]);
    }

    #[test]
    fn discretized_confirm_smooths_bursty_noise() {
        // A stream with occasional large spikes: raw CONFIRM needs many
        // samples; hourly medians converge immediately.
        let mut rng = SimRng::new(5);
        let samples: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let spike = if rng.uniform() < 0.05 { 50.0 } else { 0.0 };
                (i as f64 * 10.0, 100.0 + rng.uniform() + spike)
            })
            .collect();
        let curve = confirm_discretized(&samples, 3600.0, 0.95);
        // 2000 samples x 10 s = ~5.5 hourly windows.
        assert!(curve.len() >= 5);
        let raw: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        let raw_med = crate::describe::median(&raw);
        // Window medians cluster tightly around the true centre.
        for pt in &curve {
            assert!((pt.estimate - raw_med).abs() < 3.0, "{pt:?}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn discretize_rejects_zero_window() {
        discretize_medians(&[(0.0, 1.0)], 0.0);
    }

    #[test]
    fn within_handles_missing_ci() {
        let pt = ConfirmPoint {
            n: 3,
            estimate: 10.0,
            ci: None,
        };
        assert!(!pt.within(0.5));
    }
}
