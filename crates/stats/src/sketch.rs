//! Deterministic online quantile sketches for streaming campaigns.
//!
//! The ROADMAP's million-tenant campaigns cannot retain a trace — or
//! even one `f64` — per tenant: at 10⁶ tenants the retained-sample
//! path of [`describe`](crate::describe) is gigabytes of state. The
//! sampling-methodology literature (see PAPERS.md: *Sampling in Cloud
//! Benchmarking*) says which aggregates survive dropping raw samples:
//! quantiles, dispersion (CoV), extremes, and the gap-aware coverage
//! accounting. [`Sketch`] maintains exactly those in **fixed memory**:
//!
//! * **Streaming moments** — count, sum, sum of squares, min, max —
//!   folded in push order (mean/CoV are order-sensitive in the last
//!   ulp, so the caller's fold order is part of the contract).
//! * **An exact buffer** of the first [`SketchConfig::exact_cap`]
//!   values. While `n <= exact_cap` the sketch *is* the exact path:
//!   [`Sketch::quantile`] sorts the buffer with `total_cmp` and calls
//!   [`describe::quantile_sorted`](crate::describe::quantile_sorted),
//!   so small-N quantiles are **bit-identical** to
//!   [`Summary::from_samples`](crate::describe::Summary::from_samples)
//!   on the same multiset. This is the bit-pinned contract the
//!   `prop_sketch` suite and the verify.sh self-check gate enforce.
//! * **A fixed log-spaced histogram** over `[lo, hi]` with `buckets`
//!   bins (plus underflow/overflow bins). Beyond `exact_cap` the
//!   buffer is dropped and quantiles are interpolated inside the
//!   covering bucket, with relative value error bounded by a small
//!   multiple of [`SketchConfig::rel_error_bound`].
//!
//! ## Determinism and merging
//!
//! Everything in a sketch is a pure fold over its inputs: no clocks,
//! no allocation growth, no randomness. [`Sketch::merge`] is exact for
//! all integer state (counts, histogram, extremes) and sequential for
//! the float sums, so merging pane sketches **in a fixed pane order**
//! — the shard-ordered merge `exec` campaigns already guarantee —
//! yields byte-identical results at any worker count. Quantiles are
//! merge-order *invariant* outright: they depend only on the multiset
//! of pushed values (exact mode) or the bucket counts (histogram
//! mode), never on arrival order.

use crate::describe::quantile_sorted;

/// Shape of a [`Sketch`]: value range, bucket count, exact-mode cap.
///
/// Two sketches can only merge when their configs are identical; the
/// constructors below are the workspace's canonical shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Lower edge of the bucketed range (values `< lo` underflow).
    pub lo: f64,
    /// Upper edge of the bucketed range (values `> hi` overflow).
    pub hi: f64,
    /// Number of log-spaced buckets across `[lo, hi]`.
    pub buckets: usize,
    /// Values retained exactly before switching to histogram mode.
    pub exact_cap: usize,
}

impl SketchConfig {
    /// Canonical shape for bandwidths in bits/s: 1 Mbps .. 1 Tbps in
    /// 2048 log buckets (≈0.68% max relative quantile error), exact to
    /// 1024 samples.
    pub fn bandwidth_bps() -> SketchConfig {
        SketchConfig { lo: 1e6, hi: 1e12, buckets: 2048, exact_cap: 1024 }
    }

    /// Canonical shape for dimensionless ratios (CoV, coverage):
    /// 1e-6 .. 1e2 in 2048 log buckets (≈0.9% max relative error).
    pub fn ratio() -> SketchConfig {
        SketchConfig { lo: 1e-6, hi: 1e2, buckets: 2048, exact_cap: 1024 }
    }

    /// The one-bucket relative width `(hi/lo)^(1/buckets) - 1`: the
    /// scale of the histogram-mode quantile error. The conservative
    /// guarantee checked by the property suite is three times this
    /// (bucket width, plus rank interpolation straddling a boundary).
    pub fn rel_error_bound(&self) -> f64 {
        if self.buckets == 0 || !(self.hi > self.lo) || !(self.lo > 0.0) {
            return f64::INFINITY;
        }
        (self.hi / self.lo).powf(1.0 / self.buckets as f64) - 1.0
    }
}

/// A fixed-memory deterministic quantile + moments sketch. See the
/// module docs for the exact/histogram contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch {
    cfg: SketchConfig,
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    /// Values `< lo` (and non-finite garbage — clamped, not dropped).
    under: u64,
    /// Values `> hi`.
    over: u64,
    counts: Vec<u64>,
    /// First `exact_cap` values in push/merge order; emptied (and
    /// `overflowed` latched) the moment `n` exceeds the cap.
    exact: Vec<f64>,
    overflowed: bool,
}

impl Sketch {
    /// An empty sketch with the given shape.
    pub fn new(cfg: SketchConfig) -> Sketch {
        Sketch {
            cfg,
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            under: 0,
            over: 0,
            counts: vec![0; cfg.buckets],
            exact: Vec::new(),
            overflowed: false,
        }
    }

    /// The sketch's shape.
    pub fn config(&self) -> &SketchConfig {
        &self.cfg
    }

    /// Number of values pushed (or merged in).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Whether quantiles are still served from the exact buffer
    /// (bit-identical to the retained-sample path).
    pub fn is_exact(&self) -> bool {
        !self.overflowed
    }

    /// Smallest pushed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest pushed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean in push/merge order (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 below two
    /// values). Computed from the streaming moments, so it matches the
    /// two-pass [`describe::std_dev`](crate::describe::std_dev) to
    /// float precision, not to the bit.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Coefficient of variation σ/μ (0 when the mean is 0).
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Fold one value into the sketch. Non-finite values land in the
    /// underflow/overflow bins, but only NaN is excluded from the
    /// extremes (every comparison with NaN is false); infinities update
    /// min/max and propagate through the streaming moments (mean/CoV
    /// become inf/NaN), exactly as they would a retained-trace mean.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.bucket(v, 1);
        if !self.overflowed {
            if self.exact.len() < self.cfg.exact_cap {
                self.exact.push(v);
            } else {
                self.overflowed = true;
                self.exact = Vec::new();
            }
        }
    }

    /// Add `c` observations of `v` to the histogram bins.
    fn bucket(&mut self, v: f64, c: u64) {
        if !(v >= self.cfg.lo) {
            // Below range, or NaN (every comparison with NaN is false).
            self.under += c;
        } else if v > self.cfg.hi {
            self.over += c;
        } else {
            let span_ln = (self.cfg.hi / self.cfg.lo).ln();
            let frac = (v / self.cfg.lo).ln() / span_ln;
            let idx = ((frac * self.cfg.buckets as f64) as usize).min(self.cfg.buckets - 1);
            self.counts[idx] += c;
        }
    }

    /// Merge `other` into `self`, preserving `self`-then-`other` order
    /// for the order-sensitive float sums and the exact buffer.
    /// Returns `false` (and leaves `self` untouched) when the configs
    /// differ — merging differently-shaped sketches is a caller bug,
    /// surfaced as a typed condition instead of a panic.
    pub fn merge(&mut self, other: &Sketch) -> bool {
        if self.cfg != other.cfg {
            return false;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.under += other.under;
        self.over += other.over;
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        if self.overflowed || other.overflowed {
            self.overflowed = true;
            self.exact = Vec::new();
        } else if self.exact.len() + other.exact.len() <= self.cfg.exact_cap {
            self.exact.extend_from_slice(&other.exact);
        } else {
            self.overflowed = true;
            self.exact = Vec::new();
        }
        true
    }

    /// Quantile `p ∈ [0, 1]` (Hyndman–Fan type 7 ranks). `None` when
    /// the sketch is empty or `p` is out of range.
    ///
    /// Exact mode (`n <= exact_cap`): bit-identical to
    /// [`describe::quantile`](crate::describe::quantile) over the same
    /// multiset. Histogram mode: geometric interpolation inside the
    /// covering bucket, clamped to `[min, max]`; relative error is
    /// bounded by ≈3× [`SketchConfig::rel_error_bound`] for values
    /// inside `[lo, hi]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.n == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        if !self.overflowed {
            let mut sorted = self.exact.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            return Some(quantile_sorted(&sorted, p));
        }
        // Type-7 target rank over n values.
        let h = p * (self.n - 1) as f64;
        let mut cum = self.under;
        if (h as u64) < self.under || self.under == self.n {
            // The target order statistic fell below the bucketed range;
            // the best fixed-memory answer is the tracked minimum.
            return Some(self.min);
        }
        let span_ln = (self.cfg.hi / self.cfg.lo).ln();
        let b = self.cfg.buckets as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 > h {
                // Interpolate geometrically within bucket i.
                let frac_in = ((h - cum as f64) / c as f64).clamp(0.0, 1.0);
                let lo_ln = span_ln * (i as f64 / b);
                let width_ln = span_ln / b;
                let v = self.cfg.lo * (lo_ln + frac_in * width_ln).exp();
                return Some(v.clamp(self.min, self.max));
            }
            cum += c;
        }
        // Target rank landed in the overflow bin.
        Some(self.max)
    }

    /// Serialize the complete sketch state (bit-faithful: floats as
    /// `to_bits`), appending to `out`. [`decode`](Sketch::decode)
    /// round-trips it exactly — the streaming campaign's checkpoint
    /// records rely on this to make resumed runs byte-identical.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.cfg.lo.to_bits().to_le_bytes());
        out.extend_from_slice(&self.cfg.hi.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.cfg.buckets as u32).to_le_bytes());
        out.extend_from_slice(&(self.cfg.exact_cap as u32).to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&self.sum_sq.to_bits().to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
        out.extend_from_slice(&self.under.to_le_bytes());
        out.extend_from_slice(&self.over.to_le_bytes());
        out.push(self.overflowed as u8);
        out.extend_from_slice(&(self.exact.len() as u32).to_le_bytes());
        for v in &self.exact {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Deserialize a sketch from `bytes` starting at `*at`, advancing
    /// `*at` past it. `None` on truncated or nonsensical input.
    pub fn decode(bytes: &[u8], at: &mut usize) -> Option<Sketch> {
        let lo = f64::from_bits(take_u64(bytes, at)?);
        let hi = f64::from_bits(take_u64(bytes, at)?);
        let buckets = take_u32(bytes, at)? as usize;
        let exact_cap = take_u32(bytes, at)? as usize;
        if buckets == 0 || buckets > 1 << 20 || exact_cap > 1 << 24 {
            return None;
        }
        let n = take_u64(bytes, at)?;
        let sum = f64::from_bits(take_u64(bytes, at)?);
        let sum_sq = f64::from_bits(take_u64(bytes, at)?);
        let min = f64::from_bits(take_u64(bytes, at)?);
        let max = f64::from_bits(take_u64(bytes, at)?);
        let under = take_u64(bytes, at)?;
        let over = take_u64(bytes, at)?;
        let overflowed = match take_u8(bytes, at)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let exact_len = take_u32(bytes, at)? as usize;
        if exact_len > exact_cap {
            return None;
        }
        // Bound the declared lengths against the bytes actually present
        // before reserving: a corrupt header must not drive a ~128 MB
        // transient allocation. (exact_len ≤ 2^24 and buckets ≤ 2^20,
        // so the product cannot overflow.)
        if bytes.len().saturating_sub(*at) < (exact_len + buckets) * 8 {
            return None;
        }
        let mut exact = Vec::with_capacity(exact_len);
        for _ in 0..exact_len {
            exact.push(f64::from_bits(take_u64(bytes, at)?));
        }
        let mut counts = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            counts.push(take_u64(bytes, at)?);
        }
        Some(Sketch {
            cfg: SketchConfig { lo, hi, buckets, exact_cap },
            n,
            sum,
            sum_sq,
            min,
            max,
            under,
            over,
            counts,
            exact,
            overflowed,
        })
    }
}

/// Gap-aware coverage counters: the integer accounting of
/// [`GapAwareSummary`](crate::describe::GapAwareSummary) in a form
/// that folds and merges exactly (no floats, no order sensitivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Observations the campaigns would have produced with no faults.
    pub expected: u64,
    /// Observations that actually arrived.
    pub observed: u64,
    /// Distinct gaps across all folded traces.
    pub gaps: u64,
}

impl Coverage {
    /// Fold one trace's accounting in.
    pub fn add(&mut self, expected: u64, observed: u64, gaps: u64) {
        self.expected += expected;
        self.observed += observed;
        self.gaps += gaps;
    }

    /// Merge another accumulator (exact: integer adds commute).
    pub fn merge(&mut self, other: &Coverage) {
        self.expected += other.expected;
        self.observed += other.observed;
        self.gaps += other.gaps;
    }

    /// Fraction of expected observations that arrived (1.0 when
    /// nothing was expected).
    pub fn coverage(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.observed as f64 / self.expected as f64
        }
    }

    /// Whether any data was lost.
    pub fn is_degraded(&self) -> bool {
        self.observed < self.expected
    }
}

fn take_u8(bytes: &[u8], at: &mut usize) -> Option<u8> {
    let v = *bytes.get(*at)?;
    *at += 1;
    Some(v)
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let s = bytes.get(*at..end)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(s);
    *at = end;
    Some(u32::from_le_bytes(b))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let s = bytes.get(*at..end)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    *at = end;
    Some(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{quantile, Summary};

    fn cfg_small() -> SketchConfig {
        SketchConfig { lo: 1e-3, hi: 1e3, buckets: 512, exact_cap: 64 }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = Sketch::new(cfg_small());
        assert_eq!(s.n(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn exact_mode_is_bit_identical_to_describe() {
        let xs: Vec<f64> = (0..50).map(|i| 1.0 + (i as f64 * 13.7) % 90.0).collect();
        let mut s = Sketch::new(cfg_small());
        for &x in &xs {
            s.push(x);
        }
        assert!(s.is_exact());
        let exact = Summary::from_samples(&xs);
        for (p, want) in [
            (0.01, exact.box_summary.p1),
            (0.25, exact.box_summary.p25),
            (0.50, exact.box_summary.p50),
            (0.75, exact.box_summary.p75),
            (0.99, exact.box_summary.p99),
        ] {
            let got = s.quantile(p).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "p={p}");
        }
        assert_eq!(s.min().to_bits(), exact.min.to_bits());
        assert_eq!(s.max().to_bits(), exact.max.to_bits());
        // Mean folded in the same order: bit-identical to the sum path.
        assert_eq!(s.mean().to_bits(), crate::describe::mean(&xs).to_bits());
    }

    #[test]
    fn histogram_mode_bounds_relative_error() {
        let cfg = cfg_small();
        let xs: Vec<f64> = (0..5000)
            .map(|i| 0.01 * (1.0 + (i as f64 * 0.7919) % 400.0))
            .collect();
        let mut s = Sketch::new(cfg);
        for &x in &xs {
            s.push(x);
        }
        assert!(!s.is_exact());
        let bound = 3.0 * cfg.rel_error_bound() + 1e-12;
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let got = s.quantile(p).unwrap();
            let want = quantile(&xs, p);
            let rel = (got - want).abs() / want.abs().max(1e-300);
            assert!(rel <= bound, "p={p}: got {got}, want {want}, rel {rel} > {bound}");
        }
    }

    #[test]
    fn quantiles_are_push_order_invariant() {
        let cfg = cfg_small();
        let xs: Vec<f64> = (0..300).map(|i| 0.5 + (i as f64 * 3.1) % 200.0).collect();
        let mut fwd = Sketch::new(cfg);
        let mut rev = Sketch::new(cfg);
        for &x in &xs {
            fwd.push(x);
        }
        for &x in xs.iter().rev() {
            rev.push(x);
        }
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                fwd.quantile(p).unwrap().to_bits(),
                rev.quantile(p).unwrap().to_bits(),
                "p={p}"
            );
        }
    }

    #[test]
    fn pane_merge_is_deterministic_and_multiset_faithful() {
        let cfg = cfg_small();
        let xs: Vec<f64> = (0..200).map(|i| 0.1 + (i as f64 * 1.37) % 500.0).collect();
        let mut whole = Sketch::new(cfg);
        for &x in &xs {
            whole.push(x);
        }
        // Pane sketches merged in pane order: done twice, the results
        // must be bit-identical (this is the jobs-invariance contract —
        // the pane structure is fixed, only who computes each pane
        // varies). The float sums may differ from the straight serial
        // fold in the last ulp (addition is not associative), but the
        // multiset-derived state (n, counts, extremes, quantiles) is
        // identical to the whole fold.
        let fold_panes = || {
            let mut merged = Sketch::new(cfg);
            for pane in xs.chunks(64) {
                let mut part = Sketch::new(cfg);
                for &x in pane {
                    part.push(x);
                }
                assert!(merged.merge(&part));
            }
            merged
        };
        let a = fold_panes();
        let b = fold_panes();
        assert_eq!(a, b);
        assert_eq!(a.n(), whole.n());
        assert_eq!(a.min().to_bits(), whole.min().to_bits());
        assert_eq!(a.max().to_bits(), whole.max().to_bits());
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                a.quantile(p).unwrap().to_bits(),
                whole.quantile(p).unwrap().to_bits(),
                "p={p}"
            );
        }
        assert!((a.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
    }

    #[test]
    fn merge_rejects_config_mismatch() {
        let mut a = Sketch::new(cfg_small());
        let b = Sketch::new(SketchConfig::bandwidth_bps());
        a.push(1.0);
        let before = a.clone();
        assert!(!a.merge(&b));
        assert_eq!(a, before);
    }

    #[test]
    fn exact_overflow_latches_and_drops_buffer() {
        let cfg = SketchConfig { exact_cap: 8, ..cfg_small() };
        let mut s = Sketch::new(cfg);
        for i in 0..9 {
            s.push(1.0 + i as f64);
        }
        assert!(!s.is_exact());
        assert!(s.exact.is_empty(), "buffer freed on overflow");
        // Histogram mode still answers, clamped to the true extremes.
        let q = s.quantile(0.5).unwrap();
        assert!((1.0..=9.0).contains(&q));
    }

    #[test]
    fn out_of_range_values_clamp_to_extremes() {
        let mut s = Sketch::new(SketchConfig { exact_cap: 2, ..cfg_small() });
        for &v in &[1e-9, 0.5, 1.0, 2.0, 1e9] {
            s.push(v);
        }
        assert_eq!(s.under, 1);
        assert_eq!(s.over, 1);
        assert_eq!(s.quantile(0.0).unwrap(), 1e-9);
        assert_eq!(s.quantile(1.0).unwrap(), 1e9);
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        for take in [10usize, 200] {
            let mut s = Sketch::new(cfg_small());
            for i in 0..take {
                s.push(0.01 + (i as f64 * 2.3) % 700.0);
            }
            let mut bytes = Vec::new();
            s.encode_into(&mut bytes);
            let mut at = 0usize;
            let back = Sketch::decode(&bytes, &mut at).unwrap();
            assert_eq!(at, bytes.len());
            assert_eq!(back, s);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut s = Sketch::new(cfg_small());
        s.push(1.0);
        let mut bytes = Vec::new();
        s.encode_into(&mut bytes);
        for cut in [0, 1, 8, bytes.len() - 1] {
            let mut at = 0usize;
            assert!(Sketch::decode(&bytes[..cut], &mut at).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn coverage_counters_fold_and_merge() {
        let mut a = Coverage::default();
        a.add(100, 90, 3);
        let mut b = Coverage::default();
        b.add(50, 50, 0);
        a.merge(&b);
        assert_eq!(a, Coverage { expected: 150, observed: 140, gaps: 3 });
        assert!((a.coverage() - 140.0 / 150.0).abs() < 1e-15);
        assert!(a.is_degraded());
        assert_eq!(Coverage::default().coverage(), 1.0);
    }

    #[test]
    fn streaming_moments_match_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| 50.0 + ((i * 17) % 97) as f64).collect();
        let mut s = Sketch::new(cfg_small());
        for &x in &xs {
            s.push(x);
        }
        let sd = crate::describe::std_dev(&xs);
        let cov = crate::describe::coefficient_of_variation(&xs);
        assert!((s.std_dev() - sd).abs() / sd < 1e-9);
        assert!((s.cov() - cov).abs() / cov < 1e-9);
    }
}
