//! Nonparametric effect sizes.
//!
//! A p-value says a difference exists; an effect size says whether it
//! matters. For the skewed, heavy-tailed samples cloud experiments
//! produce, **Cliff's delta** is the standard companion to the
//! Mann–Whitney test: the probability that a random draw from one group
//! beats a random draw from the other, rescaled to `[-1, 1]`.

/// Cliff's delta between samples `a` and `b`:
/// `δ = (#{a_i > b_j} − #{a_i < b_j}) / (n_a · n_b)`.
///
/// Positive values mean `a` tends to exceed `b`. Computed in
/// `O((n_a + n_b) log)` via sorting rather than the naive quadratic
/// scan. Panics on empty input.
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut sb: Vec<f64> = b.to_vec();
    sb.sort_by(|x, y| x.total_cmp(y));
    let nb = sb.len() as f64;
    let mut sum = 0.0f64;
    for &x in a {
        // #(b < x) and #(b <= x) via binary search on the sorted b.
        let below = sb.partition_point(|&v| v < x) as f64;
        let not_above = sb.partition_point(|&v| v <= x) as f64;
        let above = nb - not_above;
        sum += below - above;
    }
    sum / (a.len() as f64 * nb)
}

/// Magnitude bands of Romano et al. (2006), the usual interpretation
/// scale for Cliff's delta.
pub fn interpret_delta(delta: f64) -> &'static str {
    let d = delta.abs();
    if d < 0.147 {
        "negligible"
    } else if d < 0.33 {
        "small"
    } else if d < 0.474 {
        "medium"
    } else {
        "large"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_groups_give_unit_delta() {
        let a = [10.0, 11.0, 12.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(cliffs_delta(&a, &b), 1.0);
        assert_eq!(cliffs_delta(&b, &a), -1.0);
    }

    #[test]
    fn identical_groups_give_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(cliffs_delta(&a, &a), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let a = [1.0, 3.0, 3.0, 5.0, 9.0];
        let b = [2.0, 3.0, 4.0, 4.0];
        let mut naive = 0.0;
        for &x in &a {
            for &y in &b {
                naive += (x > y) as i32 as f64 - ((x < y) as i32 as f64);
            }
        }
        naive /= (a.len() * b.len()) as f64;
        assert!((cliffs_delta(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn antisymmetric() {
        let a = [1.0, 5.0, 7.0, 7.0];
        let b = [2.0, 2.0, 6.0];
        assert!((cliffs_delta(&a, &b) + cliffs_delta(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn bands() {
        assert_eq!(interpret_delta(0.05), "negligible");
        assert_eq!(interpret_delta(-0.2), "small");
        assert_eq!(interpret_delta(0.4), "medium");
        assert_eq!(interpret_delta(-0.9), "large");
    }

    #[test]
    fn shifted_overlapping_groups() {
        // b = a + 0.5 with unit spacing → most pairs favour b.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| i as f64 + 0.5).collect();
        let d = cliffs_delta(&b, &a);
        assert!(d > 0.0 && d < 0.2, "delta {d}");
    }
}
