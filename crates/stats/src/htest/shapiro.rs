//! Shapiro–Wilk normality test (Royston 1995, algorithm AS R94).
//!
//! Valid for sample sizes 3 ≤ n ≤ 5000. The W statistic compares the
//! sample's order statistics against the expected order statistics of a
//! normal distribution; Royston's transformation maps W to an
//! approximately standard-normal z from which the p-value follows.

use crate::dist::{normal_cdf, normal_quantile};

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilkResult {
    /// The W statistic in (0, 1]; values near 1 indicate normality.
    pub w: f64,
    /// Upper-tail p-value for the null hypothesis of normality.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl ShapiroWilkResult {
    /// Reject normality at significance `alpha`?
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn poly(coefs: &[f64], x: f64) -> f64 {
    // coefs[0] + coefs[1] x + coefs[2] x^2 ...
    coefs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Shapiro–Wilk test. Panics if `n < 3`, `n > 5000`, or the sample has
/// zero range.
pub fn shapiro_wilk(xs: &[f64]) -> ShapiroWilkResult {
    let n = xs.len();
    assert!((3..=5000).contains(&n), "Shapiro–Wilk needs 3..=5000 samples");
    let mut x: Vec<f64> = xs.to_vec();
    x.sort_by(|a, b| a.total_cmp(b));
    let range = x[n - 1] - x[0];
    assert!(range > 0.0, "sample has zero range");

    // Expected normal order statistics (Blom approximation).
    let nf = n as f64;
    let mut m: Vec<f64> = (1..=n)
        .map(|i| normal_quantile((i as f64 - 0.375) / (nf + 0.25)))
        .collect();
    let m_sq_sum: f64 = m.iter().map(|v| v * v).sum();

    // Royston's polynomial-corrected weights.
    let u = 1.0 / nf.sqrt();
    let mut a = vec![0.0f64; n];
    let rsqrt_msq = 1.0 / m_sq_sum.sqrt();
    if n > 5 {
        let an = -2.706056 * u.powi(5) + 4.434685 * u.powi(4) - 2.071190 * u.powi(3)
            - 0.147981 * u.powi(2)
            + 0.221157 * u
            + m[n - 1] * rsqrt_msq;
        let an1 = -3.582633 * u.powi(5) + 5.682633 * u.powi(4) - 1.752461 * u.powi(3)
            - 0.293762 * u.powi(2)
            + 0.042981 * u
            + m[n - 2] * rsqrt_msq;
        let phi = (m_sq_sum - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
            / (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
        let phi_sqrt = phi.sqrt();
        for i in 2..n - 2 {
            a[i] = m[i] / phi_sqrt;
        }
        a[n - 1] = an;
        a[n - 2] = an1;
        a[0] = -an;
        a[1] = -an1;
    } else {
        let an = -2.706056 * u.powi(5) + 4.434685 * u.powi(4) - 2.071190 * u.powi(3)
            - 0.147981 * u.powi(2)
            + 0.221157 * u
            + m[n - 1] * rsqrt_msq;
        let phi = (m_sq_sum - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * an * an);
        let phi_sqrt = phi.sqrt();
        for i in 1..n - 1 {
            a[i] = m[i] / phi_sqrt;
        }
        a[n - 1] = an;
        a[0] = -an;
    }
    // m no longer needed; silence the mutation warning.
    m.clear();

    // W statistic.
    let mean = x.iter().sum::<f64>() / nf;
    let ss: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    let b: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
    let w = (b * b / ss).min(1.0);

    // P-value via Royston's normalizing transformation.
    let p_value = if n == 3 {
        // Exact for n = 3.
        let pi6 = 1.90985931710274; // 6/pi
        let stqr = 1.04719755119660; // asin(sqrt(3/4))
        let p = pi6 * ((w.sqrt()).asin() - stqr);
        p.clamp(0.0, 1.0)
    } else if n <= 11 {
        let gamma = poly(&[-2.273, 0.459], nf);
        let y = -((gamma - (1.0 - w).ln()).ln());
        let mu = poly(&[0.5440, -0.39978, 0.025054, -6.714e-4], nf);
        let sigma = poly(&[1.3822, -0.77857, 0.062767, -0.0020322], nf).exp();
        1.0 - normal_cdf((y - mu) / sigma)
    } else {
        let ln_n = nf.ln();
        let y = (1.0 - w).ln();
        let mu = poly(&[-1.5861, -0.31082, -0.083751, 0.0038915], ln_n);
        let sigma = poly(&[-0.4803, -0.082676, 0.0030302], ln_n).exp();
        1.0 - normal_cdf((y - mu) / sigma)
    };

    ShapiroWilkResult {
        w,
        p_value: p_value.clamp(0.0, 1.0),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn normal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.uniform()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn accepts_normal_data() {
        for seed in [1, 2, 3] {
            let xs = normal_sample(100, seed);
            let r = shapiro_wilk(&xs);
            assert!(r.w > 0.97, "W {}", r.w);
            assert!(!r.rejects_normality(0.01), "p {}", r.p_value);
        }
    }

    #[test]
    fn rejects_uniform_data() {
        let mut rng = SimRng::new(4);
        let xs: Vec<f64> = (0..500).map(|_| rng.uniform()).collect();
        let r = shapiro_wilk(&xs);
        assert!(r.rejects_normality(0.05), "p {}", r.p_value);
    }

    #[test]
    fn rejects_exponential_data() {
        let mut rng = SimRng::new(5);
        let xs: Vec<f64> = (0..200).map(|_| -(rng.uniform().max(1e-12)).ln()).collect();
        let r = shapiro_wilk(&xs);
        assert!(r.w < 0.95, "W {}", r.w);
        assert!(r.rejects_normality(0.001), "p {}", r.p_value);
    }

    #[test]
    fn rejects_bimodal_data() {
        let mut xs = normal_sample(100, 6);
        xs.extend(normal_sample(100, 7).iter().map(|v| v + 12.0));
        let r = shapiro_wilk(&xs);
        assert!(r.rejects_normality(0.01), "p {}", r.p_value);
    }

    #[test]
    fn small_sample_paths_work() {
        // n = 3 exact branch.
        let r = shapiro_wilk(&[1.0, 2.0, 3.1]);
        assert!(r.w > 0.9);
        assert!(r.p_value > 0.05);
        // n in 4..=11 branch.
        let r = shapiro_wilk(&[1.0, 2.0, 2.5, 3.0, 3.6, 4.0, 5.0]);
        assert!(r.p_value > 0.05, "p {}", r.p_value);
    }

    #[test]
    fn w_close_to_r_reference() {
        // R: shapiro.test(c(148,154,158,160,161,162,166,170,182,195,236))
        // gives W = 0.79, p = 0.0097 (classic Royston example).
        let xs = [
            148.0, 154.0, 158.0, 160.0, 161.0, 162.0, 166.0, 170.0, 182.0, 195.0, 236.0,
        ];
        let r = shapiro_wilk(&xs);
        assert!((r.w - 0.79).abs() < 0.02, "W {}", r.w);
        assert!((r.p_value - 0.0097).abs() < 0.01, "p {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "zero range")]
    fn rejects_constant_sample() {
        shapiro_wilk(&[2.0; 30]);
    }

    #[test]
    #[should_panic(expected = "3..=5000")]
    fn rejects_tiny_sample() {
        shapiro_wilk(&[1.0, 2.0]);
    }
}
