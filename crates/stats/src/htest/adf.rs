//! Augmented Dickey–Fuller unit-root test (stationarity check of F5.4).
//!
//! Regression (constant, no trend):
//!
//! ```text
//! Δy_t = α + β·y_{t−1} + Σ_{i=1..k} γ_i·Δy_{t−i} + ε_t
//! ```
//!
//! The test statistic is the t-ratio of β̂. Under the unit-root null it
//! follows the Dickey–Fuller distribution; we compare against
//! MacKinnon's asymptotic critical values for the constant-only case.
//! A *more negative* statistic rejects the unit root, i.e. supports
//! stationarity.

/// Result of an ADF test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdfResult {
    /// The Dickey–Fuller t-statistic of β̂.
    pub statistic: f64,
    /// Lag order used.
    pub lags: usize,
    /// Observations used in the regression.
    pub n_obs: usize,
}

impl AdfResult {
    /// MacKinnon asymptotic critical values (constant, no trend).
    pub fn critical_value(level: f64) -> f64 {
        if level <= 0.01 {
            -3.43
        } else if level <= 0.05 {
            -2.86
        } else {
            -2.57
        }
    }

    /// Reject the unit root (conclude stationary) at `level`?
    pub fn stationary_at(&self, level: f64) -> bool {
        self.statistic < Self::critical_value(level)
    }
}

/// Solve the linear system `X'X b = X'y` via Gaussian elimination with
/// partial pivoting. `x` is row-major with `cols` columns.
fn ols(x: &[f64], y: &[f64], cols: usize) -> (Vec<f64>, Vec<f64>) {
    let rows = y.len();
    assert_eq!(x.len(), rows * cols);
    // Normal equations.
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for r in 0..rows {
        for i in 0..cols {
            xty[i] += x[r * cols + i] * y[r];
            for j in 0..cols {
                xtx[i * cols + j] += x[r * cols + i] * x[r * cols + j];
            }
        }
    }
    // Invert X'X (augmented Gaussian elimination) — small (k+2)².
    let nc = cols;
    let mut aug = vec![0.0; nc * 2 * nc];
    for i in 0..nc {
        for j in 0..nc {
            aug[i * 2 * nc + j] = xtx[i * nc + j];
        }
        aug[i * 2 * nc + nc + i] = 1.0;
    }
    for col in 0..nc {
        // Pivot.
        let mut piv = col;
        for r in col + 1..nc {
            if aug[r * 2 * nc + col].abs() > aug[piv * 2 * nc + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for j in 0..2 * nc {
                aug.swap(col * 2 * nc + j, piv * 2 * nc + j);
            }
        }
        let d = aug[col * 2 * nc + col];
        assert!(d.abs() > 1e-12, "singular design matrix in ADF regression");
        for j in 0..2 * nc {
            aug[col * 2 * nc + j] /= d;
        }
        for r in 0..nc {
            if r == col {
                continue;
            }
            let f = aug[r * 2 * nc + col];
            for j in 0..2 * nc {
                aug[r * 2 * nc + j] -= f * aug[col * 2 * nc + j];
            }
        }
    }
    let mut inv = vec![0.0; nc * nc];
    for i in 0..nc {
        for j in 0..nc {
            inv[i * nc + j] = aug[i * 2 * nc + nc + j];
        }
    }
    // b = inv * X'y
    let mut beta = vec![0.0; nc];
    for i in 0..nc {
        for j in 0..nc {
            beta[i] += inv[i * nc + j] * xty[j];
        }
    }
    // Standard errors: sigma² * diag(inv).
    let mut rss = 0.0;
    for r in 0..rows {
        let mut yhat = 0.0;
        for i in 0..cols {
            yhat += x[r * cols + i] * beta[i];
        }
        rss += (y[r] - yhat) * (y[r] - yhat);
    }
    let dof = (rows - cols).max(1) as f64;
    let sigma2 = rss / dof;
    let se: Vec<f64> = (0..nc).map(|i| (sigma2 * inv[i * nc + i]).sqrt()).collect();
    (beta, se)
}

/// Augmented Dickey–Fuller test with `lags` lagged differences.
/// Panics if the series is too short (needs `lags + 10` points).
pub fn adf_test(y: &[f64], lags: usize) -> AdfResult {
    let n = y.len();
    assert!(n >= lags + 10, "series too short for ADF with {lags} lags");

    // Differences.
    let dy: Vec<f64> = y.windows(2).map(|w| w[1] - w[0]).collect();

    // Rows: t from (lags+1)..dy.len(); columns: [const, y_{t-1}, Δy_{t-1..t-k}].
    let cols = 2 + lags;
    let start = lags;
    let rows = dy.len() - start;
    let mut x = Vec::with_capacity(rows * cols);
    let mut target = Vec::with_capacity(rows);
    for t in start..dy.len() {
        x.push(1.0);
        x.push(y[t]); // y_{t-1} relative to dy[t] = y[t+1]-y[t]
        for i in 1..=lags {
            x.push(dy[t - i]);
        }
        target.push(dy[t]);
    }
    let (beta, se) = ols(&x, &target, cols);
    let statistic = beta[1] / se[1];
    AdfResult {
        statistic,
        lags,
        n_obs: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed)
    }

    #[test]
    fn stationary_ar1_rejects_unit_root() {
        let mut r = rng(1);
        let mut y = vec![0.0f64];
        for _ in 0..500 {
            let e: f64 = r.uniform() - 0.5;
            y.push(0.5 * y.last().unwrap() + e);
        }
        let res = adf_test(&y, 1);
        assert!(res.stationary_at(0.01), "stat {}", res.statistic);
    }

    #[test]
    fn random_walk_fails_to_reject() {
        let mut r = rng(2);
        let mut y = vec![0.0f64];
        for _ in 0..500 {
            let e: f64 = r.uniform() - 0.5;
            y.push(y.last().unwrap() + e);
        }
        let res = adf_test(&y, 1);
        assert!(!res.stationary_at(0.05), "stat {}", res.statistic);
    }

    #[test]
    fn white_noise_is_strongly_stationary() {
        let mut r = rng(3);
        let y: Vec<f64> = (0..300).map(|_| r.uniform()).collect();
        let res = adf_test(&y, 2);
        assert!(res.statistic < -5.0, "stat {}", res.statistic);
        assert!(res.stationary_at(0.01));
    }

    #[test]
    fn critical_values_ordering() {
        assert!(AdfResult::critical_value(0.01) < AdfResult::critical_value(0.05));
        assert!(AdfResult::critical_value(0.05) < AdfResult::critical_value(0.10));
    }

    #[test]
    fn lag_zero_equivalent_series_works() {
        let mut r = rng(4);
        let y: Vec<f64> = (0..100).map(|_| r.uniform() * 10.0).collect();
        let res = adf_test(&y, 0);
        assert!(res.statistic.is_finite());
        assert_eq!(res.lags, 0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_short_series() {
        adf_test(&[1.0; 8], 1);
    }
}
