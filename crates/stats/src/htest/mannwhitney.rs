//! Mann–Whitney U test (Wilcoxon rank-sum).
//!
//! The paper cites Mann & Whitney (1947) as the independence check of
//! F5.4: applied to the first vs. second half of a measurement
//! sequence, a significant location shift reveals drift — e.g. the
//! slow token-budget depletion of Figure 19 — that breaks the iid
//! assumption behind CI analysis.
//!
//! Uses the normal approximation with tie correction (accurate for
//! group sizes ≳ 8, which all our uses satisfy).

use crate::dist::normal_cdf;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Normal-approximation z score (tie corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl MannWhitneyResult {
    /// Reject "same distribution" at significance `alpha`?
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Mann–Whitney U test of samples `a` vs `b`.
/// Panics if either sample is empty.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitneyResult {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Pool, sort, assign mid-ranks.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0; // sum of (t^3 - t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = mid_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let nf = n as f64;
    let var_u = n1 * n2 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    let z = if var_u > 0.0 {
        // Continuity correction.
        let diff = u1 - mean_u;
        let cc = if diff > 0.0 {
            -0.5
        } else if diff < 0.0 {
            0.5
        } else {
            0.0
        };
        (diff + cc) / var_u.sqrt()
    } else {
        0.0
    };
    let p_value = 2.0 * (1.0 - normal_cdf(z.abs()));
    MannWhitneyResult {
        u: u1,
        z,
        p_value: p_value.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    #[test]
    fn identical_distributions_are_not_rejected() {
        let mut rng = SimRng::new(1);
        let a: Vec<f64> = (0..100).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..100).map(|_| rng.uniform()).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(!r.rejects_same_distribution(0.05), "p {}", r.p_value);
    }

    #[test]
    fn shifted_distributions_are_rejected() {
        let mut rng = SimRng::new(2);
        let a: Vec<f64> = (0..80).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..80).map(|_| rng.uniform() + 0.5).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.rejects_same_distribution(0.001), "p {}", r.p_value);
    }

    #[test]
    fn symmetric_in_its_arguments() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        // U1 + U2 = n1*n2.
        assert!((r1.u + r2.u - 64.0).abs() < 1e-9);
    }

    #[test]
    fn handles_heavy_ties() {
        let a = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let b = [1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value.is_finite());
        assert!(!r.rejects_same_distribution(0.05));
    }

    #[test]
    fn textbook_u_statistic() {
        // a = {1,2}, b = {3,4,5}: every b beats every a → U1 = 0.
        let r = mann_whitney_u(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(r.u, 0.0);
    }

    #[test]
    fn detects_drift_in_split_halves() {
        // The F5.4 usage: a drifting series split in half.
        let xs: Vec<f64> = (0..60).map(|i| 100.0 + i as f64 * 0.8).collect();
        let r = mann_whitney_u(&xs[..30], &xs[30..]);
        assert!(r.rejects_same_distribution(0.001));
    }
}
