//! Ljung–Box portmanteau test for autocorrelation.
//!
//! A sharper independence check than split-half comparison: tests
//! whether the first `h` autocorrelations of a series are jointly zero.
//! Cloud bandwidth traces are strongly autocorrelated (Section 3.1's
//! sample-to-sample analysis), which is one of the ways the iid
//! assumption of CI analysis fails.

use crate::autocorr::autocorrelation;
use crate::dist::chi2_cdf;

/// Result of a Ljung–Box test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBoxResult {
    /// The Q statistic.
    pub q: f64,
    /// Lags tested.
    pub lags: usize,
    /// P-value under the chi-squared(`lags`) null.
    pub p_value: f64,
}

impl LjungBoxResult {
    /// Reject independence (no autocorrelation) at `alpha`?
    pub fn rejects_independence(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Ljung–Box test over lags `1..=h`. Panics if the series is shorter
/// than `h + 2`.
pub fn ljung_box(xs: &[f64], h: usize) -> LjungBoxResult {
    let n = xs.len();
    assert!(h >= 1 && n > h + 1, "series too short for Ljung–Box({h})");
    let nf = n as f64;
    let q = nf
        * (nf + 2.0)
        * (1..=h)
            .map(|k| {
                let rho = autocorrelation(xs, k);
                rho * rho / (nf - k as f64)
            })
            .sum::<f64>();
    let p_value = 1.0 - chi2_cdf(q, h as f64);
    LjungBoxResult {
        q,
        lags: h,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    #[test]
    fn iid_noise_passes() {
        let mut rng = SimRng::new(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.uniform()).collect();
        let r = ljung_box(&xs, 10);
        assert!(!r.rejects_independence(0.01), "p {}", r.p_value);
    }

    #[test]
    fn ar1_series_fails() {
        let mut rng = SimRng::new(2);
        let mut xs = vec![0.0f64];
        for _ in 0..500 {
            let e: f64 = rng.uniform() - 0.5;
            xs.push(0.7 * xs.last().unwrap() + e);
        }
        let r = ljung_box(&xs, 10);
        assert!(r.rejects_independence(0.001), "p {}", r.p_value);
        assert!(r.q > 100.0);
    }

    #[test]
    fn periodic_series_fails() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.5).sin()).collect();
        let r = ljung_box(&xs, 5);
        assert!(r.rejects_independence(0.001));
    }

    #[test]
    fn q_grows_with_lags_for_correlated_data() {
        let xs: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let q5 = ljung_box(&xs, 5).q;
        let q20 = ljung_box(&xs, 20).q;
        assert!(q20 > q5);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_short_series() {
        ljung_box(&[1.0, 2.0, 3.0], 5);
    }
}
