//! One-way ANOVA.
//!
//! Finding F5.3: "standard statistical tools such as ANOVA and
//! confidence intervals are effective ways of achieving robust results
//! in the face of random variations". One-way ANOVA compares mean
//! performance across groups (e.g. the same benchmark on clouds A–H, or
//! across token-budget levels) against within-group noise.

use crate::dist::f_cdf;

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// F statistic (between-group MS / within-group MS).
    pub f: f64,
    /// Between-group degrees of freedom (k − 1).
    pub df_between: f64,
    /// Within-group degrees of freedom (N − k).
    pub df_within: f64,
    /// P-value of the null "all group means equal".
    pub p_value: f64,
}

impl AnovaResult {
    /// Reject equal means at `alpha`?
    pub fn rejects_equal_means(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// One-way ANOVA over `groups` (each a sample of observations).
/// Panics with fewer than two groups or any group smaller than 2.
pub fn one_way_anova(groups: &[&[f64]]) -> AnovaResult {
    assert!(groups.len() >= 2, "ANOVA needs at least two groups");
    for g in groups {
        assert!(g.len() >= 2, "each group needs at least two observations");
    }
    let k = groups.len() as f64;
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let nf = n_total as f64;
    let grand_mean =
        groups.iter().flat_map(|g| g.iter()).sum::<f64>() / nf;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let gm = g.iter().sum::<f64>() / g.len() as f64;
        ss_between += g.len() as f64 * (gm - grand_mean).powi(2);
        ss_within += g.iter().map(|x| (x - gm).powi(2)).sum::<f64>();
    }
    let df_between = k - 1.0;
    let df_within = nf - k;
    let ms_between = ss_between / df_between;
    let ms_within = ss_within / df_within;
    let f = if ms_within > 0.0 {
        ms_between / ms_within
    } else if ms_between > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let p_value = if f.is_finite() {
        1.0 - f_cdf(f, df_between, df_within)
    } else {
        0.0
    };
    AnovaResult {
        f,
        df_between,
        df_within,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn group(n: usize, mean: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| mean + rng.uniform() - 0.5).collect()
    }

    #[test]
    fn equal_means_not_rejected() {
        let a = group(50, 10.0, 1);
        let b = group(50, 10.0, 2);
        let c = group(50, 10.0, 3);
        let r = one_way_anova(&[&a, &b, &c]);
        assert!(!r.rejects_equal_means(0.01), "p {}", r.p_value);
    }

    #[test]
    fn different_means_rejected() {
        let a = group(30, 10.0, 4);
        let b = group(30, 11.0, 5);
        let c = group(30, 12.0, 6);
        let r = one_way_anova(&[&a, &b, &c]);
        assert!(r.rejects_equal_means(0.001), "p {}", r.p_value);
        assert!(r.f > 10.0);
    }

    #[test]
    fn textbook_f_value() {
        // Groups with no within variance would blow up; use a simple
        // hand-checked case instead.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        // grand mean 2.5; ss_between = 3*(2-2.5)^2 + 3*(3-2.5)^2 = 1.5
        // ss_within = 2 + 2 = 4; F = (1.5/1)/(4/4) = 1.5
        let r = one_way_anova(&[&a, &b]);
        assert!((r.f - 1.5).abs() < 1e-12, "F {}", r.f);
        assert_eq!(r.df_between, 1.0);
        assert_eq!(r.df_within, 4.0);
    }

    #[test]
    fn zero_within_variance_gives_infinite_f() {
        let a = [1.0, 1.0];
        let b = [2.0, 2.0];
        let r = one_way_anova(&[&a, &b]);
        assert!(r.f.is_infinite());
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn rejects_single_group() {
        one_way_anova(&[&[1.0, 2.0]]);
    }
}
