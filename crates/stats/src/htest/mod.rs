//! Hypothesis tests for the paper's experimental-assumption checks.
//!
//! Finding F5.4: "samples collected should be tested for normality
//! [Shapiro–Wilk], independence [Mann–Whitney], and stationarity
//! [Dickey–Fuller]". This module provides:
//!
//! * [`shapiro::shapiro_wilk`] — normality (Royston's AS R94).
//! * [`mannwhitney::mann_whitney_u`] — two-sample location shift; the
//!   paper's independence check applies it to split halves of a
//!   measurement sequence.
//! * [`adf::adf_test`] — augmented Dickey–Fuller unit-root test for
//!   stationarity.
//! * [`ljungbox::ljung_box`] — portmanteau test of autocorrelation
//!   (a sharper independence check for time series).
//! * [`anova::one_way_anova`] — the classic tool F5.3 recommends for
//!   comparing groups under stochastic noise.

pub mod adf;
pub mod anova;
pub mod kruskal;
pub mod ks;
pub mod ljungbox;
pub mod mannwhitney;
pub mod shapiro;

pub use adf::{adf_test, AdfResult};
pub use anova::{one_way_anova, AnovaResult};
pub use kruskal::{kruskal_wallis, KruskalWallisResult};
pub use ks::{ks_two_sample, KsResult};
pub use ljungbox::{ljung_box, LjungBoxResult};
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use shapiro::{shapiro_wilk, ShapiroWilkResult};

/// Outcome of the full F5.4 assumption battery on one sample sequence.
#[derive(Debug, Clone, Copy)]
pub struct AssumptionReport {
    /// Shapiro–Wilk p-value (normality; low = not normal).
    pub normality_p: f64,
    /// Mann–Whitney p-value comparing first and second halves
    /// (low = halves differ — drift / non-independence).
    pub independence_p: f64,
    /// ADF test statistic (more negative = more stationary).
    pub adf_stat: f64,
    /// Is the series stationary at the 5% level?
    pub stationary_5pct: bool,
    /// Ljung–Box p-value at lag 10 (low = autocorrelated).
    pub ljung_box_p: f64,
}

impl AssumptionReport {
    /// Run the full battery. Requires at least 20 observations.
    pub fn run(xs: &[f64]) -> Self {
        assert!(xs.len() >= 20, "assumption battery needs >= 20 samples");
        let half = xs.len() / 2;
        let sw = shapiro_wilk(xs);
        let mw = mann_whitney_u(&xs[..half], &xs[half..]);
        let adf = adf_test(xs, 1);
        let lb = ljung_box(xs, 10);
        AssumptionReport {
            normality_p: sw.p_value,
            independence_p: mw.p_value,
            adf_stat: adf.statistic,
            stationary_5pct: adf.stationary_at(0.05),
            ljung_box_p: lb.p_value,
        }
    }

    /// Do the classic iid-normal analysis assumptions hold at the 5%
    /// level? (The paper's point is that token-bucket-coupled runs fail
    /// this — see Figure 19.)
    pub fn iid_assumptions_hold(&self) -> bool {
        self.independence_p > 0.05 && self.stationary_5pct && self.ljung_box_p > 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    #[test]
    fn battery_passes_on_iid_noise() {
        let mut rng = SimRng::new(11);
        let xs: Vec<f64> = (0..200)
            .map(|_| {
                // Sum of uniforms ≈ normal.
                (0..12).map(|_| rng.uniform()).sum::<f64>() - 6.0
            })
            .collect();
        let rep = AssumptionReport::run(&xs);
        assert!(rep.normality_p > 0.01, "normality p {}", rep.normality_p);
        assert!(rep.iid_assumptions_hold(), "{rep:?}");
    }

    #[test]
    fn battery_fails_on_drifting_series() {
        // Monotone drift (the Figure 19 depletion pattern) plus a bit
        // of deterministic jitter so the ADF design is not collinear.
        let xs: Vec<f64> = (0..100)
            .map(|i| 50.0 + i as f64 + ((i * 37) % 11) as f64 * 0.3)
            .collect();
        let rep = AssumptionReport::run(&xs);
        assert!(!rep.iid_assumptions_hold(), "{rep:?}");
        assert!(rep.independence_p < 0.01);
    }

    #[test]
    #[should_panic(expected = ">= 20")]
    fn battery_rejects_tiny_samples() {
        AssumptionReport::run(&[1.0; 5]);
    }
}
