//! Two-sample Kolmogorov–Smirnov test.
//!
//! Finding F5.1 recommends cross-cloud runs as *sensitivity analysis*:
//! "by running the same system with the same input data and same
//! parameters on multiple clouds, experimenters can reveal how
//! sensitive the results are to the choices made by each provider."
//! The KS statistic quantifies that sensitivity — the largest gap
//! between the two runtime distributions — without assuming any shape.

use crate::describe::ecdf;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The D statistic: sup |F1(x) − F2(x)|.
    pub d: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p_value: f64,
}

impl KsResult {
    /// Reject "same distribution" at `alpha`?
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test. Panics on empty samples.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let fa = ecdf(a);
    let fb = ecdf(b);

    // Walk the merged support computing the max CDF gap; at each
    // distinct value, consume every tied observation on both sides
    // before evaluating the gap (ties must move the CDFs atomically).
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    let (mut ca, mut cb) = (0.0f64, 0.0f64);
    while i < fa.len() || j < fb.len() {
        let xa = fa.get(i).map(|p| p.0).unwrap_or(f64::INFINITY);
        let xb = fb.get(j).map(|p| p.0).unwrap_or(f64::INFINITY);
        let x = xa.min(xb);
        while i < fa.len() && fa[i].0 == x {
            ca = fa[i].1;
            i += 1;
        }
        while j < fb.len() && fb[j].0 == x {
            cb = fb[j].1;
            j += 1;
        }
        d = d.max((ca - cb).abs());
    }

    // Asymptotic p-value: Q_KS(sqrt(n_e) + 0.12 + 0.11/sqrt(n_e)) * d.
    let n_e = (a.len() * b.len()) as f64 / (a.len() + b.len()) as f64;
    let lambda = (n_e.sqrt() + 0.12 + 0.11 / n_e.sqrt()) * d;
    let p_value = q_ks(lambda);
    KsResult { d, p_value }
}

/// Kolmogorov survival function `Q(λ) = 2 Σ (−1)^{k−1} exp(−2 k² λ²)`.
fn q_ks(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| lo + (hi - lo) * rng.uniform()).collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let a = uniform(200, 0.0, 1.0, 1);
        let b = uniform(200, 0.0, 1.0, 2);
        let r = ks_two_sample(&a, &b);
        assert!(!r.rejects_same_distribution(0.01), "p {}", r.p_value);
        assert!(r.d < 0.15, "D {}", r.d);
    }

    #[test]
    fn shifted_distributions_fail() {
        let a = uniform(150, 0.0, 1.0, 3);
        let b = uniform(150, 0.5, 1.5, 4);
        let r = ks_two_sample(&a, &b);
        assert!(r.rejects_same_distribution(0.001), "p {}", r.p_value);
        assert!(r.d > 0.4);
    }

    #[test]
    fn disjoint_supports_give_d_of_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_location_different_shape_detected() {
        // Same median, very different spread.
        let a = uniform(300, 0.45, 0.55, 5);
        let b = uniform(300, 0.0, 1.0, 6);
        let r = ks_two_sample(&a, &b);
        assert!(r.rejects_same_distribution(0.001), "p {}", r.p_value);
    }

    #[test]
    fn symmetric() {
        let a = uniform(80, 0.0, 1.0, 7);
        let b = uniform(60, 0.2, 1.2, 8);
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        assert!((r1.d - r2.d).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_and_tiny_samples() {
        let r = ks_two_sample(&[1.0, 1.0, 1.0], &[1.0, 1.0]);
        assert!(r.d.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }
}
