//! Kruskal–Wallis H test — nonparametric one-way ANOVA.
//!
//! Finding F5.4: "When results are not normally-distributed,
//! non-parametric statistics can be used [Gibbons & Chakraborti]".
//! Cloud runtimes are rarely normal (Shapiro–Wilk rejects routinely),
//! so comparing treatments (clouds, budgets, instance types) should use
//! ranks: Kruskal–Wallis generalizes Mann–Whitney to k groups the way
//! ANOVA generalizes the t-test.

use crate::dist::chi2_cdf;

/// Result of a Kruskal–Wallis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KruskalWallisResult {
    /// The H statistic (tie-corrected).
    pub h: f64,
    /// Degrees of freedom (k − 1).
    pub df: f64,
    /// P-value under the chi-squared approximation.
    pub p_value: f64,
}

impl KruskalWallisResult {
    /// Reject "all groups from the same distribution" at `alpha`?
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Kruskal–Wallis H test over `groups`. Panics with fewer than two
/// groups or any empty group.
pub fn kruskal_wallis(groups: &[&[f64]]) -> KruskalWallisResult {
    assert!(groups.len() >= 2, "need at least two groups");
    for g in groups {
        assert!(!g.is_empty(), "empty group");
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let nf = n_total as f64;

    // Pool and mid-rank.
    let mut pooled: Vec<(f64, usize)> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.iter().map(move |&v| (v, gi)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rank_sums = vec![0.0f64; groups.len()];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            rank_sums[pooled[k].1] += mid_rank;
        }
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let mut h = 0.0;
    for (gi, g) in groups.iter().enumerate() {
        h += rank_sums[gi] * rank_sums[gi] / g.len() as f64;
    }
    h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);
    // Tie correction.
    let correction = 1.0 - tie_term / (nf * nf * nf - nf);
    if correction > 0.0 {
        h /= correction;
    }

    let df = (groups.len() - 1) as f64;
    KruskalWallisResult {
        h,
        df,
        p_value: 1.0 - chi2_cdf(h.max(0.0), df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn group(n: usize, shift: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        // Deliberately non-normal (exponential-ish).
        (0..n)
            .map(|_| shift - (rng.uniform().max(1e-12)).ln())
            .collect()
    }

    #[test]
    fn identical_distributions_not_rejected() {
        let a = group(40, 0.0, 1);
        let b = group(40, 0.0, 2);
        let c = group(40, 0.0, 3);
        let r = kruskal_wallis(&[&a, &b, &c]);
        assert!(!r.rejects_same_distribution(0.01), "p {}", r.p_value);
        assert_eq!(r.df, 2.0);
    }

    #[test]
    fn shifted_groups_rejected() {
        let a = group(40, 0.0, 4);
        let b = group(40, 1.0, 5);
        let c = group(40, 2.0, 6);
        let r = kruskal_wallis(&[&a, &b, &c]);
        assert!(r.rejects_same_distribution(0.001), "p {}", r.p_value);
        assert!(r.h > 13.8); // chi2(0.999; 2)
    }

    #[test]
    fn two_groups_agree_with_mann_whitney_direction() {
        use crate::htest::mannwhitney::mann_whitney_u;
        let a = group(30, 0.0, 7);
        let b = group(30, 0.8, 8);
        let kw = kruskal_wallis(&[&a, &b]);
        let mw = mann_whitney_u(&a, &b);
        // Both should reject (or not) together for a clear shift.
        assert_eq!(
            kw.rejects_same_distribution(0.01),
            mw.rejects_same_distribution(0.01)
        );
    }

    #[test]
    fn handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.0, 2.0, 3.0, 3.0];
        let r = kruskal_wallis(&[&a, &b]);
        assert!(r.h.is_finite());
        assert!(!r.rejects_same_distribution(0.05));
    }

    #[test]
    fn textbook_h_statistic() {
        // Hand-checkable: groups {1,2,3}, {4,5,6}, {7,8,9}: ranks are
        // 1..9 in order; H = 12/(9·10)·(36+225+576)/3 − 30 = 7.2.
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = [7.0, 8.0, 9.0];
        let r = kruskal_wallis(&[&a, &b, &c]);
        assert!((r.h - 7.2).abs() < 1e-9, "H {}", r.h);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn rejects_single_group() {
        kruskal_wallis(&[&[1.0, 2.0]]);
    }
}
