//! Cohen's Kappa — inter-rater agreement for the literature survey.
//!
//! The paper's survey (Section 2) was scored by two reviewers; agreement
//! per category was measured with Cohen's Kappa (values 0.95, 0.81,
//! 0.85 — "values larger than 0.8 show that almost perfect agreement
//! has been achieved").

/// Cohen's Kappa for two raters' labels over the same items.
///
/// Labels are arbitrary `Ord` values; the slices must be equally long
/// and non-empty. Returns κ = (p_o − p_e) / (1 − p_e); if the raters
/// agree perfectly *and* expected agreement is 1 (both constant and
/// equal), returns 1.0.
///
/// The per-label tallies live in `BTreeMap`s so the expected-agreement
/// sum is accumulated in label order: float addition is not
/// associative, and a hash map would make the last bits of κ depend on
/// the process's hash seed (detlint rule D1).
pub fn cohens_kappa<T: Ord>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "raters must score the same items");
    assert!(!a.is_empty(), "no items to score");
    let n = a.len() as f64;

    use std::collections::BTreeMap;
    let mut count_a: BTreeMap<&T, f64> = BTreeMap::new();
    let mut count_b: BTreeMap<&T, f64> = BTreeMap::new();
    let mut observed = 0.0;
    for (x, y) in a.iter().zip(b) {
        *count_a.entry(x).or_insert(0.0) += 1.0;
        *count_b.entry(y).or_insert(0.0) += 1.0;
        if x == y {
            observed += 1.0;
        }
    }
    let p_o = observed / n;
    let p_e: f64 = count_a
        .iter()
        .map(|(label, ca)| ca / n * count_b.get(label).copied().unwrap_or(0.0) / n)
        .sum();
    if (1.0 - p_e).abs() < 1e-12 {
        return if (1.0 - p_o).abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (p_o - p_e) / (1.0 - p_e)
}

/// Interpretation bands of Viera & Garrett (2005), cited by the paper.
pub fn interpret_kappa(kappa: f64) -> &'static str {
    match kappa {
        k if k < 0.0 => "less than chance agreement",
        k if k <= 0.20 => "slight agreement",
        k if k <= 0.40 => "fair agreement",
        k if k <= 0.60 => "moderate agreement",
        k if k <= 0.80 => "substantial agreement",
        _ => "almost perfect agreement",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = [1, 0, 1, 1, 0, 1];
        assert_eq!(cohens_kappa(&a, &a), 1.0);
    }

    #[test]
    fn chance_level_is_zero() {
        // Independent raters with 50/50 marginals: p_o = p_e = 0.5.
        let a = [1, 1, 0, 0];
        let b = [1, 0, 1, 0];
        let k = cohens_kappa(&a, &b);
        assert!(k.abs() < 1e-12, "kappa {k}");
    }

    #[test]
    fn textbook_example() {
        // Classic 2x2 example: 20 yes-yes, 5 yes-no, 10 no-yes, 15 no-no.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..20 {
            a.push("yes");
            b.push("yes");
        }
        for _ in 0..5 {
            a.push("yes");
            b.push("no");
        }
        for _ in 0..10 {
            a.push("no");
            b.push("yes");
        }
        for _ in 0..15 {
            a.push("no");
            b.push("no");
        }
        // p_o = 35/50 = 0.7; p_a(yes)=0.5, p_b(yes)=0.6
        // p_e = 0.5*0.6 + 0.5*0.4 = 0.5; kappa = 0.2/0.5 = 0.4.
        let k = cohens_kappa(&a, &b);
        assert!((k - 0.4).abs() < 1e-12, "kappa {k}");
    }

    #[test]
    fn systematic_disagreement_is_negative() {
        let a = [1, 1, 1, 0, 0, 0];
        let b = [0, 0, 0, 1, 1, 1];
        assert!(cohens_kappa(&a, &b) < 0.0);
    }

    #[test]
    fn interpretation_bands() {
        assert_eq!(interpret_kappa(0.95), "almost perfect agreement");
        assert_eq!(interpret_kappa(0.81), "almost perfect agreement");
        assert_eq!(interpret_kappa(0.7), "substantial agreement");
        assert_eq!(interpret_kappa(0.5), "moderate agreement");
        assert_eq!(interpret_kappa(0.3), "fair agreement");
        assert_eq!(interpret_kappa(0.1), "slight agreement");
        assert_eq!(interpret_kappa(-0.2), "less than chance agreement");
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn rejects_length_mismatch() {
        cohens_kappa(&[1, 2], &[1]);
    }

    /// Regression pin: κ over a multi-category labeling, down to the
    /// last bit. The expected-agreement term sums one product per label;
    /// with the BTreeMap tallies that sum always runs in label order, so
    /// this exact bit pattern is stable across processes and platforms.
    /// A HashMap regression would make this test flake across runs.
    #[test]
    fn kappa_bits_are_pinned_for_multi_category_labels() {
        let a = [3u8, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let b = [3u8, 1, 4, 2, 5, 9, 2, 6, 5, 3, 5, 9, 7, 7, 9, 2];
        let k = cohens_kappa(&a, &b);
        assert_eq!(k.to_bits(), 0x3FE6D0EEC7BFB687, "kappa {k}");
    }
}
