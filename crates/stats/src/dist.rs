//! Probability distributions: CDFs, quantiles, and the special
//! functions they need (error function, log-gamma, incomplete
//! gamma/beta). Implementations follow the classic rational/continued-
//! fraction approximations (Abramowitz & Stegun; Numerical Recipes) and
//! are accurate to ~1e-7 or better over the ranges used here.

use std::f64::consts::PI;

/// Error function, |err| < 1.2e-7 (Numerical Recipes `erfc` rational
/// Chebyshev approximation).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Standard normal quantile (Acklam's algorithm, |rel err| < 1.15e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural log of the gamma function (Lanczos).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma arguments out of domain");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q, then P = 1 - Q.
        1.0 - gamma_q_cf(a, x)
    }
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Chi-squared CDF with `k` degrees of freedom.
pub fn chi2_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "shape must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k / 2.0, x / 2.0)
}

/// Regularized incomplete beta function `I_x(a, b)` (continued
/// fraction, Numerical Recipes `betai`).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let bt =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * betacf(a, b, x) / a
    } else {
        1.0 - bt * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    h
}

/// Student's t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// F-distribution CDF with `d1`, `d2` degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
    if f <= 0.0 {
        return 0.0;
    }
    beta_inc(d1 / 2.0, d2 / 2.0, d1 * f / (d1 * f + d2))
}

/// Standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-6);
        close(erf(1.0), 0.8427007929497149, 1e-6);
        close(erf(-1.0), -0.8427007929497149, 1e-6);
        close(erf(2.0), 0.9953222650189527, 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-6);
        close(normal_cdf(1.959963985), 0.975, 1e-6);
        close(normal_cdf(-1.644853627), 0.05, 1e-6);
        close(normal_cdf(3.0), 0.9986501019683699, 1e-6);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-7);
        }
        close(normal_quantile(0.975), 1.959963985, 1e-6);
    }

    #[test]
    fn ln_gamma_reference_values() {
        close(ln_gamma(1.0), 0.0, 1e-10);
        close(ln_gamma(2.0), 0.0, 1e-10);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-9);
        close(ln_gamma(0.5), PI.sqrt().ln(), 1e-9);
    }

    #[test]
    fn chi2_reference_values() {
        // chi2(0.95; k=1) critical value 3.841: CDF(3.841, 1) ≈ 0.95.
        close(chi2_cdf(3.841458821, 1.0), 0.95, 1e-6);
        close(chi2_cdf(18.30703805, 10.0), 0.95, 1e-6);
        assert_eq!(chi2_cdf(0.0, 3.0), 0.0);
    }

    #[test]
    fn t_cdf_reference_values() {
        // t(0.975; df=10) = 2.228138852.
        close(t_cdf(2.228138852, 10.0), 0.975, 1e-6);
        close(t_cdf(0.0, 5.0), 0.5, 1e-12);
        close(t_cdf(-2.228138852, 10.0), 0.025, 1e-6);
        // Large df converges to normal.
        close(t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
    }

    #[test]
    fn f_cdf_reference_values() {
        // F(0.95; 5, 10) critical value 3.325835.
        close(f_cdf(3.325835, 5.0, 10.0), 0.95, 1e-5);
        assert_eq!(f_cdf(0.0, 2.0, 2.0), 0.0);
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
        assert_eq!(beta_inc(2.0, 2.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 2.0, 1.0), 1.0);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.5;
            let v = gamma_p(3.0, x);
            assert!(v >= prev);
            prev = v;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn normal_pdf_peak() {
        close(normal_pdf(0.0), 0.3989422804014327, 1e-12);
    }
}
