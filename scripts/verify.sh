#!/usr/bin/env bash
# Pre-PR gate for the hermetic-build policy.
#
# Runs the tier-1 suite fully offline and then fails if any dependency
# in the graph resolves from outside this workspace. The workspace must
# build, test, and bench with the registry unreachable; a dependency
# that slips into a Cargo.toml shows up here before it shows up as a
# broken offline build.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --workspace --offline

echo "== tier-1: offline tests =="
cargo test -q --workspace --offline

echo "== hermetic check: dependency sources =="
# Every package in the resolved graph must come from the workspace
# (cargo metadata reports `"source": null` for path dependencies).
# Any non-null source means a registry/git dependency crept in.
foreign=$(cargo metadata --format-version 1 --offline \
  | tr ',' '\n' \
  | grep -o '"source":"[^"]*"' \
  | sort -u || true)
if [ -n "$foreign" ]; then
  echo "FAIL: non-workspace dependencies in the graph:" >&2
  echo "$foreign" >&2
  exit 1
fi
if grep -q 'source = "registry' Cargo.lock; then
  echo "FAIL: Cargo.lock pins registry packages:" >&2
  grep -B2 'source = "registry' Cargo.lock >&2
  exit 1
fi
echo "OK: all dependencies are workspace-local"

echo "== detlint: determinism & hermeticity contract =="
# Static gate: the self-hosted linter (crates/detlint) analyzes every
# source file and manifest in the workspace and rejects the constructs
# that break the reproducibility contract at their source — unordered
# maps, wall-clock reads, ad-hoc threading, entropy-seeded RNGs,
# panicking calls in library code, NaN-unsafe float ordering,
# non-workspace dependencies, crash-unsafe persistence (token rules
# D1-D8), RNG streams shared across parallel tasks and order-unstable
# float reductions (dataflow rules D9/D10 over the token-tree parse),
# and panics reachable from campaign entry points (call-graph rule
# D11). Exceptions live in the source as scoped pragmas with mandatory
# reasons (P0), and a pragma whose rule no longer fires is flagged as
# dead (P1, warn-tier; see DESIGN.md §13). Deny-tier findings exit 1
# and fail tier-1. `--no-cache` here so the gate itself never depends
# on cache state; the cache paths get their own gate below.
cargo run -q --release --offline -p detlint --bin detlint -- --root . --no-cache
echo "OK: workspace lints deny-clean"

echo "== detlint: every suppression pragma carries a reason =="
# Belt and braces on top of rule P0: no pragma in shipped source may
# omit its \`-- reason\` clause. The linter's fixture tree seeds
# reason-less pragmas on purpose and is excluded.
marker="detlint:allow("
pragma_bad=$(grep -rn "$marker" --include='*.rs' src crates \
  | grep -v 'crates/detlint/tests/fixtures/' \
  | grep -v ' -- ' || true)
if [ -n "$pragma_bad" ]; then
  echo "FAIL: suppression pragmas without a reason:" >&2
  echo "$pragma_bad" >&2
  exit 1
fi
echo "OK: all pragmas are reasoned"

echo "== detlint: JSON report is byte-stable, cold cache vs warm cache =="
# CI diffs the JSON-lines report across runs; the ordering contract
# (sorted by file, line, rule) must hold bit-for-bit. The runs are
# staged to also prove the incremental-cache contract: a cold-cache
# run (facts parsed from scratch and persisted), a warm-cache run
# (every file served from target/detlint-cache), and a cache-free run
# must all render the same bytes — the cache may change how fast the
# answer arrives, never what it is.
lint_a=$(mktemp)
lint_b=$(mktemp)
lint_c=$(mktemp)
rm -rf target/detlint-cache
cargo run -q --release --offline -p detlint --bin detlint -- --root . --json > "$lint_a"
cargo run -q --release --offline -p detlint --bin detlint -- --root . --json > "$lint_b"
cargo run -q --release --offline -p detlint --bin detlint -- --root . --json --no-cache > "$lint_c"
if ! diff -u "$lint_a" "$lint_b" > /dev/null; then
  echo "FAIL: detlint --json differs between cold-cache and warm-cache runs:" >&2
  diff -u "$lint_a" "$lint_b" >&2 | head -20
  exit 1
fi
if ! diff -u "$lint_a" "$lint_c" > /dev/null; then
  echo "FAIL: detlint --json differs between cached and cache-free runs:" >&2
  diff -u "$lint_a" "$lint_c" >&2 | head -20
  exit 1
fi
rm -f "$lint_a" "$lint_b" "$lint_c"
echo "OK: detlint --json is byte-identical cold-cache, warm-cache, and uncached"

echo "== detlint: pipeline benchmark =="
# Times the analysis uncached / cold-cache / warm-cache over this
# workspace, re-checks byte-identity and deny-cleanliness from inside
# the bench, and writes the files/sec trajectory to BENCH_detlint.json.
cargo bench -q --offline -p bench --bench supp_detlint

echo "== deterministic replay: faulty campaign =="
# A campaign with every fault class active must be bit-for-bit
# reproducible from its seed: run the example twice, diff the output.
replay_a=$(mktemp)
replay_b=$(mktemp)
trap 'rm -f "$replay_a" "$replay_b"' EXIT
cargo run -q --release --offline --example faulty_campaign > "$replay_a"
cargo run -q --release --offline --example faulty_campaign > "$replay_b"
if ! diff -u "$replay_a" "$replay_b" > /dev/null; then
  echo "FAIL: faulty campaign is not deterministic across replays:" >&2
  diff -u "$replay_a" "$replay_b" >&2 | head -40
  exit 1
fi
if ! grep -q "cured: false" "$replay_a"; then
  echo "FAIL: straggler experiment no longer shows the negative result" >&2
  exit 1
fi
echo "OK: faulty campaign replays bit-identically"

echo "== parallel invariance: REPRO_JOBS=1 vs REPRO_JOBS=4 =="
# The exec runtime's contract: worker count never changes results.
# Run the full fault-injection example serially and on 4 workers and
# require bit-for-bit identical output.
par_a=$(mktemp)
par_b=$(mktemp)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b"' EXIT
REPRO_JOBS=1 cargo run -q --release --offline --example faulty_campaign > "$par_a"
REPRO_JOBS=4 cargo run -q --release --offline --example faulty_campaign > "$par_b"
if ! diff -u "$par_a" "$par_b" > /dev/null; then
  echo "FAIL: output differs between 1 and 4 workers:" >&2
  diff -u "$par_a" "$par_b" >&2 | head -40
  exit 1
fi
if ! diff -u "$replay_a" "$par_a" > /dev/null; then
  echo "FAIL: parallel output differs from the serial replay gate's:" >&2
  diff -u "$replay_a" "$par_a" >&2 | head -40
  exit 1
fi
echo "OK: campaign output is invariant to the worker count"

echo "== fabric engines: fig19 campaign three ways, bit-identical =="
# The three stepping engines (event — the default, fast via
# FABRIC_EVENT_PATH=0, reference via FABRIC_SLOW_PATH=1) must never
# change results. Gates:
#   1. The full faulty campaign runs three ways; all outputs (golden
#      hashes included) must match byte for byte. The REPRO_JOBS gates
#      above already ran the default (event) engine on 1 and 4
#      workers, so jobs-invariance of the event path is covered too.
#   2. The property suites drive randomized fabrics through the fast
#      and event paths against a reference twin and compare every
#      observable with f64::to_bits — the event suite at every event
#      boundary, with adversarial zero-length/simultaneous/fault-edge
#      cases.
#   3. The counting-allocator probe asserts steady-state stepping and
#      event jumps perform zero heap allocations, each path measured
#      in its own counter epoch.
# (detlint deny-cleanliness of the event engine is enforced by the
# detlint stage above, which lints the whole workspace.)
slow_a=$(mktemp)
fast_a=$(mktemp)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b" "$slow_a" "$fast_a"' EXIT
FABRIC_SLOW_PATH=1 cargo run -q --release --offline --example faulty_campaign > "$slow_a"
if ! diff -u "$replay_a" "$slow_a" > /dev/null; then
  echo "FAIL: FABRIC_SLOW_PATH=1 output differs from the event path's:" >&2
  diff -u "$replay_a" "$slow_a" >&2 | head -40
  exit 1
fi
FABRIC_EVENT_PATH=0 cargo run -q --release --offline --example faulty_campaign > "$fast_a"
if ! diff -u "$replay_a" "$fast_a" > /dev/null; then
  echo "FAIL: FABRIC_EVENT_PATH=0 output differs from the event path's:" >&2
  diff -u "$replay_a" "$fast_a" >&2 | head -40
  exit 1
fi
cargo test -q --release --offline -p netsim --test prop_fabric_fast
cargo test -q --release --offline -p netsim --test prop_event_driven
cargo test -q --release --offline -p netsim --test alloc_free
echo "OK: event, fast, and reference engines are bit-identical; jumps are allocation-free"

echo "== campaign kill/resume: crash at a pinned shard, resume, byte-identical report =="
# The crash-safety contract (DESIGN.md §11): a fleet campaign killed
# mid-run and resumed from its journal must produce a final report
# byte-identical to an uninterrupted run. Gates:
#   1. `--kill-after 3` makes the process abort() the instant the 3rd
#      shard is journaled — as sudden as a SIGKILL: no unwinding, no
#      flushing — and the run must NOT exit cleanly.
#   2. The killed journal must be a byte-prefix of the uninterrupted
#      run's journal (the WAL is append-only and deterministic), and
#      two kills at the same pinned count must leave identical files.
#   3. Resuming (with 2 shards re-verified bit-for-bit against the
#      log) must reproduce the uninterrupted stdout report and final
#      journal byte-for-byte — on 1 worker and on 4 (the resumed run
#      itself must be jobs-invariant).
#   4. Resuming under a different seed must fail loudly with the typed
#      config-fingerprint mismatch, not blend incompatible results.
wal=$(mktemp -d)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b" "$slow_a" "$fast_a"; rm -rf "$wal"' EXIT
fleet="cargo run -q --release --offline --bin cloud-repro -- fleet \
  --cloud hpc-8 --pairs 6 --hours 2 --seed 7"
$fleet --journal "$wal/full.wal"  > "$wal/full.out"  2>/dev/null
for k in 1 2; do
  # The inner bash keeps the "Aborted (core dumped)" job notice out of
  # the gate log; the run must die (exit != 0).
  if bash -c "$fleet --journal '$wal/kill$k.wal' --kill-after 3" > /dev/null 2>&1; then
    echo "FAIL: --kill-after 3 run exited cleanly instead of dying" >&2
    exit 1
  fi
done
if ! cmp -s "$wal/kill1.wal" "$wal/kill2.wal"; then
  echo "FAIL: two kills at the same shard count left different journals" >&2
  exit 1
fi
if [ "$(wc -c < "$wal/kill1.wal")" -ge "$(wc -c < "$wal/full.wal")" ]; then
  echo "FAIL: killed journal is not smaller than the complete one" >&2
  exit 1
fi
if ! head -c "$(wc -c < "$wal/kill1.wal")" "$wal/full.wal" | cmp -s - "$wal/kill1.wal"; then
  echo "FAIL: killed journal is not a byte-prefix of the uninterrupted one" >&2
  exit 1
fi
REPRO_JOBS=1 $fleet --journal "$wal/kill1.wal" --resume --verify-resume 2 \
  > "$wal/resume1.out" 2>/dev/null
REPRO_JOBS=4 $fleet --journal "$wal/kill2.wal" --resume --verify-resume 2 \
  > "$wal/resume4.out" 2>/dev/null
if ! diff -u "$wal/full.out" "$wal/resume1.out" > /dev/null; then
  echo "FAIL: resumed report differs from the uninterrupted run's:" >&2
  diff -u "$wal/full.out" "$wal/resume1.out" >&2 | head -40
  exit 1
fi
if ! diff -u "$wal/resume1.out" "$wal/resume4.out" > /dev/null; then
  echo "FAIL: resumed report differs between 1 and 4 workers:" >&2
  diff -u "$wal/resume1.out" "$wal/resume4.out" >&2 | head -40
  exit 1
fi
if ! cmp -s "$wal/full.wal" "$wal/kill1.wal" || ! cmp -s "$wal/full.wal" "$wal/kill2.wal"; then
  echo "FAIL: healed journals differ from the uninterrupted one" >&2
  exit 1
fi
if fleet_mismatch_out=$( { cargo run -q --release --offline --bin cloud-repro -- fleet \
  --cloud hpc-8 --pairs 6 --hours 2 --seed 8 \
  --journal "$wal/full.wal" --resume; } 2>&1 ); then
  echo "FAIL: resume under a different seed exited cleanly" >&2
  exit 1
fi
if ! printf '%s' "$fleet_mismatch_out" | grep -q "different campaign config"; then
  echo "FAIL: config mismatch did not surface the typed error:" >&2
  printf '%s\n' "$fleet_mismatch_out" >&2
  exit 1
fi
cargo test -q --release --offline -p journal --test prop_journal
cargo test -q --release --offline -p measure --test journaled_fleet
echo "OK: killed campaign resumes to a byte-identical report; bad resumes fail loudly"

echo "== topology: flat campaign byte-identical to the topology-less path =="
# The flat-equivalence contract (DESIGN.md §12): wiring a fabric with
# the flat (linkless) topology must be invisible. `run --topology flat`
# and a plain `run` must print byte-identical reports — on each of the
# three stepping engines and at 1 and 4 workers. A fat-tree run on the
# same seed must engage the per-link water-filling allocator (its
# report footer shows a live link cache instead of the flat marker),
# and the randomized property suite pits the standalone allocator,
# ECMP replay, flat wiring, and the JSON codec against their reference
# contracts.
topo_dir=$(mktemp -d)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b" "$slow_a" "$fast_a"; rm -rf "$wal" "$topo_dir"' EXIT
topo_run="cargo run -q --release --offline --bin cloud-repro -- run \
  --cloud gce-8 --workload q65 --reps 5 --nodes 16 --seed 11"
for path in event fast reference; do
  $topo_run --fabric-path "$path" > "$topo_dir/plain_$path.out"
  $topo_run --fabric-path "$path" --topology flat > "$topo_dir/flat_$path.out"
  if ! diff -u "$topo_dir/plain_$path.out" "$topo_dir/flat_$path.out" > /dev/null; then
    echo "FAIL: --topology flat differs from the topology-less run ($path engine):" >&2
    diff -u "$topo_dir/plain_$path.out" "$topo_dir/flat_$path.out" >&2 | head -20
    exit 1
  fi
done
REPRO_JOBS=1 $topo_run --topology flat > "$topo_dir/flat_j1.out"
REPRO_JOBS=4 $topo_run --topology flat > "$topo_dir/flat_j4.out"
REPRO_JOBS=4 $topo_run > "$topo_dir/plain_j4.out"
if ! diff -u "$topo_dir/flat_j1.out" "$topo_dir/flat_j4.out" > /dev/null; then
  echo "FAIL: flat-topology run differs between 1 and 4 workers:" >&2
  diff -u "$topo_dir/flat_j1.out" "$topo_dir/flat_j4.out" >&2 | head -20
  exit 1
fi
if ! diff -u "$topo_dir/flat_j4.out" "$topo_dir/plain_j4.out" > /dev/null; then
  echo "FAIL: flat and topology-less runs differ on 4 workers:" >&2
  diff -u "$topo_dir/flat_j4.out" "$topo_dir/plain_j4.out" >&2 | head -20
  exit 1
fi
$topo_run --topology fattree4 > "$topo_dir/tree.out"
if ! grep -q "link cache [0-9]" "$topo_dir/tree.out"; then
  echo "FAIL: fat-tree run did not engage the per-link allocator:" >&2
  tail -1 "$topo_dir/tree.out" >&2
  exit 1
fi
if diff -u "$topo_dir/tree.out" "$topo_dir/flat_event.out" > /dev/null; then
  echo "FAIL: fat-tree run is identical to the flat one (topology inert)" >&2
  exit 1
fi
cargo test -q --release --offline -p topo --test prop_topo
echo "OK: flat topology is byte-invisible; fat-tree engages the link allocator"

echo "== streaming scale: campaign --tenants, O(1) aggregation, byte-identical everywhere =="
# The streaming-aggregation contract (DESIGN.md §14): a campaign over N
# seed-derived tenants folds into fixed-size sketch state, and its
# report bytes are a pure function of the spec — invariant to worker
# count, stepping engine, and kill/resume. Gates:
#   1. `campaign --tenants 2000` (reference faults, 16-host star with
#      per-tenant path ceilings) byte-diffed across REPRO_JOBS=1/4 and
#      across the event/fast/reference engines.
#   2. `--self-check` cross-checks sketch quantiles against the exact
#      estimator: bit-pinned below the exact-buffer cap (N=600),
#      bounded-error above it (N=2000); both must report PASS.
#   3. A run killed mid-campaign (`--kill-after-tenants 1200` aborts at
#      a checkpoint, SIGKILL-style) must leave a journal that is a
#      byte-prefix of the uninterrupted run's; resuming it must
#      reproduce the uninterrupted report and journal byte-for-byte.
#   4. The sketch property suite and the engine-invariance integration
#      test run under the gate.
scale_dir=$(mktemp -d)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b" "$slow_a" "$fast_a"; rm -rf "$wal" "$topo_dir" "$scale_dir"' EXIT
stream="cargo run -q --release --offline --bin cloud-repro -- campaign \
  --cloud hpc-8 --tenants 2000 --hours 0.05 --seed 13 --faults \
  --topology star --hosts 16"
REPRO_JOBS=1 $stream > "$scale_dir/j1.out" 2>/dev/null
REPRO_JOBS=4 $stream > "$scale_dir/j4.out" 2>/dev/null
if ! diff -u "$scale_dir/j1.out" "$scale_dir/j4.out" > /dev/null; then
  echo "FAIL: streaming campaign differs between 1 and 4 workers:" >&2
  diff -u "$scale_dir/j1.out" "$scale_dir/j4.out" >&2 | head -20
  exit 1
fi
FABRIC_SLOW_PATH=1 $stream > "$scale_dir/ref.out" 2>/dev/null
FABRIC_EVENT_PATH=0 $stream > "$scale_dir/fast.out" 2>/dev/null
for eng in ref fast; do
  if ! diff -u "$scale_dir/j1.out" "$scale_dir/$eng.out" > /dev/null; then
    echo "FAIL: streaming campaign differs on the $eng engine:" >&2
    diff -u "$scale_dir/j1.out" "$scale_dir/$eng.out" >&2 | head -20
    exit 1
  fi
done
stream_check="cargo run -q --release --offline --bin cloud-repro -- campaign \
  --cloud hpc-8 --hours 0.05 --seed 13 --faults --self-check"
$stream_check --tenants 600 > "$scale_dir/check600.out" 2>/dev/null
$stream_check --tenants 2000 > "$scale_dir/check2000.out" 2>/dev/null
if ! grep -q "exact path, bit-pinned.* -- PASS" "$scale_dir/check600.out"; then
  echo "FAIL: self-check at N=600 is not bit-pinned PASS:" >&2
  grep "self-check" "$scale_dir/check600.out" >&2 || true
  exit 1
fi
if ! grep -q "sketched.* -- PASS" "$scale_dir/check2000.out"; then
  echo "FAIL: sketched self-check at N=2000 did not PASS:" >&2
  grep "self-check" "$scale_dir/check2000.out" >&2 || true
  exit 1
fi
stream_wal="$stream --checkpoint-every 500 --journal"
$stream_wal "$scale_dir/full.jnl" > "$scale_dir/full_jnl.out" 2>/dev/null
if ! diff -u "$scale_dir/j1.out" "$scale_dir/full_jnl.out" > /dev/null; then
  echo "FAIL: journaled streaming report differs from the plain one" >&2
  exit 1
fi
if bash -c "$stream_wal '$scale_dir/kill.jnl' --kill-after-tenants 1200" > /dev/null 2>&1; then
  echo "FAIL: --kill-after-tenants 1200 run exited cleanly instead of dying" >&2
  exit 1
fi
if [ "$(wc -c < "$scale_dir/kill.jnl")" -ge "$(wc -c < "$scale_dir/full.jnl")" ]; then
  echo "FAIL: killed streaming journal is not smaller than the complete one" >&2
  exit 1
fi
if ! head -c "$(wc -c < "$scale_dir/kill.jnl")" "$scale_dir/full.jnl" \
  | cmp -s - "$scale_dir/kill.jnl"; then
  echo "FAIL: killed streaming journal is not a byte-prefix of the full one" >&2
  exit 1
fi
REPRO_JOBS=4 $stream_wal "$scale_dir/kill.jnl" --resume > "$scale_dir/resumed.out" 2>/dev/null
if ! diff -u "$scale_dir/full_jnl.out" "$scale_dir/resumed.out" > /dev/null; then
  echo "FAIL: resumed streaming report differs from the uninterrupted run's:" >&2
  diff -u "$scale_dir/full_jnl.out" "$scale_dir/resumed.out" >&2 | head -20
  exit 1
fi
if ! cmp -s "$scale_dir/full.jnl" "$scale_dir/kill.jnl"; then
  echo "FAIL: healed streaming journal differs from the uninterrupted one" >&2
  exit 1
fi
cargo test -q --release --offline -p vstats --test prop_sketch
cargo test -q --release --offline -p measure --test stream_campaign
echo "OK: streaming campaign is byte-identical across workers, engines, and kill/resume"

echo "== verify.sh: all gates passed =="
