#!/usr/bin/env bash
# Pre-PR gate for the hermetic-build policy.
#
# Runs the tier-1 suite fully offline and then fails if any dependency
# in the graph resolves from outside this workspace. The workspace must
# build, test, and bench with the registry unreachable; a dependency
# that slips into a Cargo.toml shows up here before it shows up as a
# broken offline build.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --workspace --offline

echo "== tier-1: offline tests =="
cargo test -q --workspace --offline

echo "== hermetic check: dependency sources =="
# Every package in the resolved graph must come from the workspace
# (cargo metadata reports `"source": null` for path dependencies).
# Any non-null source means a registry/git dependency crept in.
foreign=$(cargo metadata --format-version 1 --offline \
  | tr ',' '\n' \
  | grep -o '"source":"[^"]*"' \
  | sort -u || true)
if [ -n "$foreign" ]; then
  echo "FAIL: non-workspace dependencies in the graph:" >&2
  echo "$foreign" >&2
  exit 1
fi
if grep -q 'source = "registry' Cargo.lock; then
  echo "FAIL: Cargo.lock pins registry packages:" >&2
  grep -B2 'source = "registry' Cargo.lock >&2
  exit 1
fi
echo "OK: all dependencies are workspace-local"

echo "== panic policy: no unwrap/panic/bare assert in library code =="
# Library code (everything outside #[cfg(test)] blocks and comments)
# must not call .unwrap(), panic!(), unreachable!(), or message-less
# assert!(): fallible paths return typed errors, invariants carry a
# message. Known-safe sites are allowlisted below with a reason.
python3 - <<'PYEOF'
import glob, re, sys

# path-substring allowlist: (file, why)
ALLOW = [
    ("crates/proplite/", "test framework: panicking is its contract"),
    ("crates/bigdata/src/dag.rs", "pop() guarded by loop condition"),
    ("crates/bigdata/src/workloads/tpcds.rs", "unknown query = documented API contract"),
    ("crates/clouds/src/ballani.rs", "unknown cloud label = documented API contract"),
    ("crates/netsim/src/shaper/empirical.rs", "last() guarded by constructor assert"),
    ("crates/stats/src/describe.rs", "last() guarded by is_empty assert"),
    ("crates/survey/src/corpus.rs", "exhaustive static table"),
]

def strip_tests(src):
    out, lines, i = [], src.split("\n"), 0
    while i < len(lines):
        if "#[cfg(test)]" in lines[i]:
            depth, started = 0, False
            while i < len(lines):
                depth += lines[i].count("{") - lines[i].count("}")
                if "{" in lines[i]:
                    started = True
                if started and depth <= 0:
                    break
                i += 1
            i += 1
        else:
            out.append((i + 1, lines[i]))
            i += 1
    return out

def bare_assert(src, ln):
    # grab the macro call from line ln until parens balance, then count
    # top-level commas: zero commas = no message.
    lines = src.split("\n")
    txt, j = "", ln - 1
    while j < len(lines):
        txt += lines[j] + "\n"
        if "(" in txt and txt.count("(") <= txt.count(")"):
            break
        j += 1
    inner = txt[txt.index("assert!"):]
    d = commas = 0
    for ch in inner:
        if ch == "(":
            d += 1
        elif ch == ")":
            d -= 1
            if d == 0:
                break
        elif ch == "," and d == 1:
            commas += 1
    return commas == 0

violations = []
for f in sorted(glob.glob("crates/*/src/**/*.rs", recursive=True)):
    if any(f.startswith(a) or a in f for a, _ in ALLOW):
        continue
    src = open(f).read()
    for ln, line in strip_tests(src):
        code = line.split("//")[0]
        if line.lstrip().startswith(("//", "///", "//!")):
            continue
        if re.search(r"\.unwrap\(\)|panic!\(|unreachable!\(", code):
            violations.append(f"{f}:{ln}: {line.strip()[:90]}")
        m = re.search(r"(?<![_a-zA-Z])assert!\s*\(", code)
        if m and bare_assert(src, ln):
            violations.append(f"{f}:{ln}: bare assert: {line.strip()[:80]}")

if violations:
    print("FAIL: panic-policy violations in library code:", file=sys.stderr)
    print("\n".join(violations), file=sys.stderr)
    sys.exit(1)
print(f"OK: library code is panic-clean ({len(ALLOW)} allowlisted sites)")
PYEOF

echo "== deterministic replay: faulty campaign =="
# A campaign with every fault class active must be bit-for-bit
# reproducible from its seed: run the example twice, diff the output.
replay_a=$(mktemp)
replay_b=$(mktemp)
trap 'rm -f "$replay_a" "$replay_b"' EXIT
cargo run -q --release --offline --example faulty_campaign > "$replay_a"
cargo run -q --release --offline --example faulty_campaign > "$replay_b"
if ! diff -u "$replay_a" "$replay_b" > /dev/null; then
  echo "FAIL: faulty campaign is not deterministic across replays:" >&2
  diff -u "$replay_a" "$replay_b" >&2 | head -40
  exit 1
fi
if ! grep -q "cured: false" "$replay_a"; then
  echo "FAIL: straggler experiment no longer shows the negative result" >&2
  exit 1
fi
echo "OK: faulty campaign replays bit-identically"

echo "== parallel invariance: REPRO_JOBS=1 vs REPRO_JOBS=4 =="
# The exec runtime's contract: worker count never changes results.
# Run the full fault-injection example serially and on 4 workers and
# require bit-for-bit identical output.
par_a=$(mktemp)
par_b=$(mktemp)
trap 'rm -f "$replay_a" "$replay_b" "$par_a" "$par_b"' EXIT
REPRO_JOBS=1 cargo run -q --release --offline --example faulty_campaign > "$par_a"
REPRO_JOBS=4 cargo run -q --release --offline --example faulty_campaign > "$par_b"
if ! diff -u "$par_a" "$par_b" > /dev/null; then
  echo "FAIL: output differs between 1 and 4 workers:" >&2
  diff -u "$par_a" "$par_b" >&2 | head -40
  exit 1
fi
if ! diff -u "$replay_a" "$par_a" > /dev/null; then
  echo "FAIL: parallel output differs from the serial replay gate's:" >&2
  diff -u "$replay_a" "$par_a" >&2 | head -40
  exit 1
fi
echo "OK: campaign output is invariant to the worker count"

echo "== verify.sh: all gates passed =="
