#!/usr/bin/env bash
# Pre-PR gate for the hermetic-build policy.
#
# Runs the tier-1 suite fully offline and then fails if any dependency
# in the graph resolves from outside this workspace. The workspace must
# build, test, and bench with the registry unreachable; a dependency
# that slips into a Cargo.toml shows up here before it shows up as a
# broken offline build.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --workspace --offline

echo "== tier-1: offline tests =="
cargo test -q --workspace --offline

echo "== hermetic check: dependency sources =="
# Every package in the resolved graph must come from the workspace
# (cargo metadata reports `"source": null` for path dependencies).
# Any non-null source means a registry/git dependency crept in.
foreign=$(cargo metadata --format-version 1 --offline \
  | tr ',' '\n' \
  | grep -o '"source":"[^"]*"' \
  | sort -u || true)
if [ -n "$foreign" ]; then
  echo "FAIL: non-workspace dependencies in the graph:" >&2
  echo "$foreign" >&2
  exit 1
fi
if grep -q 'source = "registry' Cargo.lock; then
  echo "FAIL: Cargo.lock pins registry packages:" >&2
  grep -B2 'source = "registry' Cargo.lock >&2
  exit 1
fi
echo "OK: all dependencies are workspace-local"

echo "== verify.sh: all gates passed =="
