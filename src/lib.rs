#![deny(missing_docs)]

//! # cloud-repro
//!
//! Umbrella crate for the reproduction of *"Is Big Data Performance
//! Reproducible in Modern Cloud Networks?"* (Uta et al., NSDI 2020).
//!
//! Everything lives in [`repro_core`] and the substrate crates it
//! re-exports; this crate hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). See the repository
//! README for a map.
//!
//! ```
//! use cloud_repro::prelude::*;
//!
//! let profile = clouds::ec2::c5_xlarge();
//! let campaign = measure::run_campaign(
//!     &profile,
//!     netsim::TrafficPattern::FullSpeed,
//!     3600.0,
//!     42,
//! ).unwrap();
//! assert!(campaign.exhibits_variability());
//! ```

pub use repro_core;

pub mod cli;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use repro_core::bigdata;
    pub use repro_core::clouds;
    pub use repro_core::exec;
    pub use repro_core::measure;
    pub use repro_core::netsim;
    pub use repro_core::survey;
    pub use repro_core::topo;
    pub use repro_core::vstats;
    pub use repro_core::{
        audit, recommend_repetitions, ExhaustionNote, ExperimentDesign, Finding,
        MeasurementReport, Recommendation, Violation,
    };
}
