//! Argument parsing and name resolution for the `cloud-repro` CLI.
//!
//! Kept in the library so the parsing logic is unit-testable; the
//! binary (`src/bin/cloud-repro.rs`) only wires subcommands to it.

use repro_core::bigdata::{self, workloads};
use repro_core::clouds;
use repro_core::netsim::{StepPath, TrafficPattern};
use repro_core::topo;
use std::collections::BTreeMap;

/// Parse `--key value` / `--flag` pairs into a map.
///
/// A flag followed by another flag (or by nothing) is boolean and maps
/// to `"true"`.
pub fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        if key.is_empty() {
            return Err("empty flag name".to_string());
        }
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            flags.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Resolve a cloud name like `ec2-c5.xlarge`, `gce-8`, `hpc-2`.
pub fn cloud_by_name(name: &str) -> Result<clouds::CloudProfile, String> {
    let profile = match name {
        "ec2-c5.large" => clouds::ec2::c5_large(),
        "ec2-c5.xlarge" => clouds::ec2::c5_xlarge(),
        "ec2-c5.2xlarge" => clouds::ec2::c5_2xlarge(),
        "ec2-c5.4xlarge" => clouds::ec2::c5_4xlarge(),
        "ec2-c5.9xlarge" => clouds::ec2::c5_9xlarge(),
        "ec2-m5.xlarge" => clouds::ec2::m5_xlarge(),
        "ec2-m4.16xlarge" => clouds::ec2::m4_16xlarge(),
        "gce-1" => clouds::gce::n_core(1),
        "gce-2" => clouds::gce::n_core(2),
        "gce-4" => clouds::gce::n_core(4),
        "gce-8" => clouds::gce::n_core(8),
        "hpc-2" => clouds::hpccloud::n_core(2),
        "hpc-4" => clouds::hpccloud::n_core(4),
        "hpc-8" => clouds::hpccloud::n_core(8),
        other => return Err(format!("unknown cloud {other:?}; see `cloud-repro list`")),
    };
    Ok(profile)
}

/// Resolve a workload name: HiBench (`terasort`/`ts` …) or TPC-DS
/// (`q65`, restricted to the Figure 17 subset).
pub fn workload_by_name(name: &str) -> Result<bigdata::JobSpec, String> {
    use workloads::{hibench, tpcds};
    if let Some(q) = name.strip_prefix('q') {
        let q: u32 = q.parse().map_err(|_| format!("bad query {name:?}"))?;
        if !tpcds::QUERIES.contains(&q) {
            return Err(format!(
                "query {q} is outside the Figure 17 subset {:?}",
                tpcds::QUERIES
            ));
        }
        return Ok(tpcds::query(q));
    }
    Ok(match name {
        "terasort" | "ts" => hibench::terasort(),
        "wordcount" | "wc" => hibench::wordcount(),
        "sort" | "s" => hibench::sort(),
        "bayes" | "bs" => hibench::bayes(),
        "kmeans" | "km" => hibench::kmeans(),
        other => return Err(format!("unknown workload {other:?}; see `cloud-repro list`")),
    })
}

/// Resolve a traffic-pattern name.
pub fn pattern_by_name(name: &str) -> Result<TrafficPattern, String> {
    Ok(match name {
        "full-speed" | "full" => TrafficPattern::FullSpeed,
        "10-30" => TrafficPattern::TEN_THIRTY,
        "5-30" => TrafficPattern::FIVE_THIRTY,
        other => {
            return Err(format!(
                "unknown pattern {other:?} (full-speed, 10-30, 5-30)"
            ))
        }
    })
}

/// Resolve a `--topology` name against the topo zoo, sized to hold at
/// least `nodes` hosts: `flat` (the default linkless model —
/// byte-identical to not passing `--topology` at all), `star`,
/// `fattree<k>` (e.g. `fattree4`), `oversub<ratio>` (e.g. `oversub2`).
pub fn topology_by_name(name: &str, nodes: usize) -> Result<topo::Topology, String> {
    topo::zoo::by_name(name, nodes).map_err(|e| e.to_string())
}

/// Resolve a fabric stepping-engine name (the `--fabric-path` flag):
/// `event` (default engine), `fast` (the per-step cached path), or
/// `reference` (the original unbatched loops). All three are
/// bit-identical; the choice trades wall-clock time only.
pub fn fabric_path_by_name(name: &str) -> Result<StepPath, String> {
    Ok(match name {
        "event" => StepPath::Event,
        "fast" => StepPath::Fast,
        "reference" | "ref" => StepPath::Reference,
        other => {
            return Err(format!(
                "unknown fabric path {other:?} (event, fast, reference)"
            ))
        }
    })
}

/// Fetch a float flag with a default.
pub fn get_f64(flags: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants a number, got {v:?}")),
    }
}

/// Fetch an integer flag with a default.
pub fn get_u64(flags: &BTreeMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants an integer, got {v:?}")),
    }
}

/// Parse the global `--jobs N` flag: `Some(n)` for a positive integer,
/// `None` when absent (callers fall back to the `REPRO_JOBS`
/// environment variable, then to all cores — see
/// [`exec::resolve_jobs`](repro_core::exec::resolve_jobs)).
///
/// Worker count never changes results (the runtime merges by task
/// index), so this flag trades wall-clock time only.
pub fn get_jobs(flags: &BTreeMap<String, String>) -> Result<Option<usize>, String> {
    match flags.get("jobs") {
        None => Ok(None),
        Some(v) => match repro_core::exec::parse_jobs(v) {
            Some(n) => Ok(Some(n)),
            None => Err(format!("--jobs wants a positive integer, got {v:?}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_values_and_booleans() {
        let f = parse_flags(&args(&["--cloud", "gce-8", "--bucket", "--hours", "2"])).unwrap();
        assert_eq!(f["cloud"], "gce-8");
        assert_eq!(f["bucket"], "true");
        assert_eq!(f["hours"], "2");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn trailing_boolean_flag() {
        let f = parse_flags(&args(&["--bucket"])).unwrap();
        assert_eq!(f["bucket"], "true");
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(parse_flags(&args(&["oops"])).is_err());
        assert!(parse_flags(&args(&["--"])).is_err());
    }

    #[test]
    fn resolves_all_advertised_clouds() {
        for name in [
            "ec2-c5.large",
            "ec2-c5.xlarge",
            "ec2-c5.2xlarge",
            "ec2-c5.4xlarge",
            "ec2-c5.9xlarge",
            "ec2-m5.xlarge",
            "ec2-m4.16xlarge",
            "gce-1",
            "gce-2",
            "gce-4",
            "gce-8",
            "hpc-2",
            "hpc-4",
            "hpc-8",
        ] {
            assert!(cloud_by_name(name).is_ok(), "{name}");
        }
        assert!(cloud_by_name("azure-d4").is_err());
    }

    #[test]
    fn resolves_workloads_and_aliases() {
        assert_eq!(workload_by_name("terasort").unwrap().name, "TS");
        assert_eq!(workload_by_name("ts").unwrap().name, "TS");
        assert_eq!(workload_by_name("q65").unwrap().name, "q65");
        assert!(workload_by_name("q999").is_err());
        assert!(workload_by_name("q12").is_err()); // not in the subset
        assert!(workload_by_name("pi").is_err());
    }

    #[test]
    fn resolves_patterns() {
        assert_eq!(pattern_by_name("full").unwrap().label(), "full-speed");
        assert_eq!(pattern_by_name("10-30").unwrap().label(), "10-30");
        assert!(pattern_by_name("1-1").is_err());
    }

    #[test]
    fn jobs_flag_parses_or_rejects() {
        let f = parse_flags(&args(&["--jobs", "4"])).unwrap();
        assert_eq!(get_jobs(&f).unwrap(), Some(4));
        let absent = parse_flags(&args(&["--seed", "1"])).unwrap();
        assert_eq!(get_jobs(&absent).unwrap(), None);
        for bad in ["0", "-3", "many"] {
            let f = parse_flags(&args(&["--jobs", bad])).unwrap();
            assert!(get_jobs(&f).is_err(), "--jobs {bad} must be rejected");
        }
    }

    #[test]
    fn resolves_topologies() {
        assert!(topology_by_name("flat", 12).unwrap().is_flat());
        assert_eq!(topology_by_name("fattree4", 32).unwrap().hosts().len(), 32);
        assert!(topology_by_name("oversub2", 12).unwrap().hosts().len() >= 12);
        assert!(topology_by_name("star", 4).is_ok());
        assert!(topology_by_name("torus", 4).is_err());
        assert!(topology_by_name("fattree3", 4).is_err());
    }

    #[test]
    fn resolves_fabric_paths() {
        assert_eq!(fabric_path_by_name("event").unwrap(), StepPath::Event);
        assert_eq!(fabric_path_by_name("fast").unwrap(), StepPath::Fast);
        assert_eq!(fabric_path_by_name("ref").unwrap(), StepPath::Reference);
        assert_eq!(
            fabric_path_by_name("reference").unwrap(),
            StepPath::Reference
        );
        assert!(fabric_path_by_name("turbo").is_err());
    }

    #[test]
    fn typed_getters() {
        let f = parse_flags(&args(&["--hours", "2.5", "--reps", "7", "--bad", "x"])).unwrap();
        assert_eq!(get_f64(&f, "hours", 1.0).unwrap(), 2.5);
        assert_eq!(get_u64(&f, "reps", 1).unwrap(), 7);
        assert_eq!(get_f64(&f, "absent", 9.0).unwrap(), 9.0);
        assert!(get_f64(&f, "bad", 0.0).is_err());
        assert!(get_u64(&f, "hours", 0).is_err()); // 2.5 is not an int
    }
}
