//! `cloud-repro` — command-line front end for the simulator and the
//! experiment-design toolkit.
//!
//! ```text
//! cloud-repro list
//! cloud-repro campaign  --cloud ec2-c5.xlarge --pattern 5-30 --hours 2
//! cloud-repro fleet     --cloud hpc-8 --pairs 8 --hours 6 --jobs 4
//! cloud-repro probe     --cloud ec2-c5.2xlarge --probes 15
//! cloud-repro fingerprint --cloud ec2-c5.xlarge --bucket
//! cloud-repro run       --cloud gce-8 --workload q65 --reps 10
//! cloud-repro plan      --cloud hpc-8 --workload terasort --pilot 30 --target 0.05
//! cloud-repro survey
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set minimal.

use cloud_repro::cli::{
    cloud_by_name, fabric_path_by_name, get_f64, get_jobs, get_u64, parse_flags, pattern_by_name,
    topology_by_name, workload_by_name,
};
use cloud_repro::prelude::*;
use netsim::units::hours;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn cmd_list() {
    println!("clouds:");
    println!("  ec2-c5.large ec2-c5.xlarge ec2-c5.2xlarge ec2-c5.4xlarge");
    println!("  ec2-c5.9xlarge ec2-m5.xlarge ec2-m4.16xlarge");
    println!("  gce-1 gce-2 gce-4 gce-8");
    println!("  hpc-2 hpc-4 hpc-8");
    println!("workloads:");
    println!("  terasort wordcount sort bayes kmeans");
    print!("  TPC-DS:");
    for q in bigdata::workloads::tpcds::QUERIES {
        print!(" q{q}");
    }
    println!();
    println!("patterns: full-speed 10-30 5-30");
    print!("topologies:");
    for name in topo::zoo::names() {
        print!(" {name}");
    }
    println!();
}

fn cmd_campaign(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let pattern = pattern_by_name(flags.get("pattern").map(|s| s.as_str()).unwrap_or("full-speed"))?;
    let h = get_f64(flags, "hours", 1.0)?;
    let seed = get_u64(flags, "seed", 1)?;
    if flags.contains_key("tenants") {
        return cmd_campaign_stream(flags, cloud, pattern, h, seed);
    }
    let res = measure::run_campaign(&cloud, pattern, hours(h), seed).map_err(|e| e.to_string())?;
    println!(
        "campaign: {} {} / {} for {h} h (seed {seed})",
        res.provider, res.instance_type, res.pattern
    );
    let report = MeasurementReport::new("bandwidth [bps]", &res.trace.bandwidths());
    print!("{}", report.render());
    println!(
        "total: {:.2} TB moved, {} retransmissions, variability: {}",
        res.total_bits / 8e12,
        res.total_retransmissions,
        res.exhibits_variability()
    );
    if let Some(cost) = res.cost_usd {
        println!("cost of the pair: ${cost:.2}");
    }
    Ok(())
}

/// Streaming campaign: shard `--tenants N` seed-derived pairs into
/// fixed panes, fold each into O(1) sketch state, and print a report
/// whose bytes are invariant to worker count, stepping engine, and
/// kill/resume. The deterministic report goes to **stdout**; progress,
/// checkpoints, and resume accounting go to stderr, so `verify.sh`
/// can diff reports across all those axes byte-for-byte.
fn cmd_campaign_stream(
    flags: &BTreeMap<String, String>,
    cloud: clouds::CloudProfile,
    pattern: netsim::TrafficPattern,
    h: f64,
    seed: u64,
) -> Result<(), String> {
    let tenants = get_u64(flags, "tenants", 0)?;
    if tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    let cloud = if flags.contains_key("faults") { cloud.with_reference_faults() } else { cloud };
    let mut spec = measure::StreamSpec::new(cloud, pattern, hours(h), tenants, seed);
    spec.placement_seed = get_u64(flags, "placement-seed", seed)?;
    spec.self_check = flags.contains_key("self-check");
    spec.checkpoint_every = get_u64(flags, "checkpoint-every", 0)?;
    if let Some(name) = flags.get("topology") {
        let hosts = get_u64(flags, "hosts", 16)? as usize;
        spec.topology = Some(topology_by_name(name, hosts)?);
    }
    let jobs = exec::current_jobs();

    let Some(jpath) = flags.get("journal") else {
        let out = measure::run_fleet_stream(&spec, jobs).map_err(|e| e.to_string())?;
        print!("{}", out.render(&spec));
        return Ok(());
    };

    let resume = flags.contains_key("resume");
    let kill_after = get_u64(flags, "kill-after-tenants", 0)?;
    eprintln!(
        "campaign[journaled]: journal {jpath}, resume={resume}, checkpoint-every={}, \
         {jobs} worker{}",
        spec.cadence(),
        if jobs == 1 { "" } else { "s" }
    );
    let out = measure::run_fleet_stream_journaled(
        &spec,
        std::path::Path::new(jpath),
        resume,
        jobs,
        |n| {
            eprintln!("  checkpointed {n}/{tenants} tenants");
            if kill_after > 0 && n >= kill_after {
                // Crash-testing hook: die as abruptly as a SIGKILL
                // would — no unwinding, no flushing, mid-campaign.
                eprintln!("  --kill-after-tenants {kill_after}: aborting now");
                std::process::abort();
            }
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "resume: resumed={} skipped={} computed={} verified_pane={} truncated={}B \
         checkpoints={} config={:#018x}",
        out.resume.resumed,
        out.resume.tenants_skipped,
        out.resume.tenants_computed,
        out.resume.verified_pane,
        out.resume.truncated_bytes,
        out.resume.checkpoints_written,
        out.config_fingerprint
    );
    print!("{}", out.summary.render(&spec));
    Ok(())
}

fn cmd_probe(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let n = get_u64(flags, "probes", 15)? as usize;
    let seed = get_u64(flags, "seed", 1)?;
    let max_s = get_f64(flags, "max-seconds", 7000.0)?;
    let probes = measure::probe_instance_type(&cloud, n, seed, max_s);
    if probes.is_empty() {
        println!(
            "{} {}: no token-bucket throttling observed within {max_s} s",
            cloud.provider.name(),
            cloud.instance_type
        );
        return Ok(());
    }
    println!(
        "{} {}: {} of {n} probes saw the drop",
        cloud.provider.name(),
        cloud.instance_type,
        probes.len()
    );
    for (i, p) in probes.iter().enumerate() {
        println!(
            "  probe {i:>2}: time-to-empty {:>6.0} s, {:.2} -> {:.2} Gbps, budget ~{:>6.0} Gbit",
            p.time_to_empty_s,
            p.high_bps / 1e9,
            p.low_bps / 1e9,
            p.budget_bits / 1e9
        );
    }
    let planner = measure::RestPlanner::from_probe(&probes[0]);
    println!(
        "rest planning: full refill takes {:.0} min at the probed refill rate",
        planner.full_refill_s() / 60.0
    );
    Ok(())
}

fn cmd_fingerprint(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let seed = get_u64(flags, "seed", 1)?;
    let with_bucket = flags.contains_key("bucket");
    let fp = measure::Fingerprint::capture(&cloud, seed, with_bucket);
    println!("fingerprint of {} {}:", fp.provider, fp.instance_type);
    println!("  base bandwidth : {:.2} Gbps", fp.base_bandwidth_gbps);
    println!("  base RTT       : {:.3} ms", fp.base_rtt_ms);
    println!("  loaded RTT     : {:.3} ms", fp.loaded_rtt_ms);
    match fp.token_bucket {
        Some(b) => println!(
            "  token bucket   : empties in {:.0} s, {:.1} -> {:.1} Gbps",
            b.time_to_empty_s, b.high_gbps, b.low_gbps
        ),
        None => println!(
            "  token bucket   : {}",
            if with_bucket { "none detected" } else { "not probed (--bucket to enable)" }
        ),
    }
    Ok(())
}

fn cmd_fleet(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let pattern = pattern_by_name(flags.get("pattern").map(|s| s.as_str()).unwrap_or("full-speed"))?;
    let h = get_f64(flags, "hours", 1.0)?;
    let n_pairs = get_u64(flags, "pairs", 6)? as usize;
    let seed = get_u64(flags, "seed", 1)?;
    let jobs = exec::current_jobs();
    if let Some(jpath) = flags.get("journal") {
        return cmd_fleet_journaled(flags, cloud, pattern, h, n_pairs, seed, jobs, jpath);
    }
    println!(
        "fleet: {n_pairs} pairs of {} {} / {} for {h} h (seed {seed}, {jobs} worker{})",
        cloud.provider.name(),
        cloud.instance_type,
        pattern.label(),
        if jobs == 1 { "" } else { "s" },
    );
    let fleet = measure::run_fleet(&cloud, pattern, hours(h), n_pairs, seed)
        .map_err(|e| e.to_string())?;
    for (i, p) in fleet.pairs.iter().enumerate() {
        println!(
            "  pair {i:>2}: mean {:>6.2} Gbps  CoV {:>6.3}  coverage {:>5.1}%",
            p.mean_bandwidth_bps() / 1e9,
            p.summary.cov,
            p.coverage() * 100.0
        );
    }
    for f in &fleet.failed_pairs {
        println!("  pair {:>2}: died at {:.0} s (partial data: {})", f.pair, f.death_s, f.partial_data);
    }
    for p in &fleet.panicked {
        println!("  pair {:>2}: worker task panicked (contained): {}", p.task, p.payload);
    }
    println!(
        "across-pair CoV {:.4} (spatial), mean within-pair CoV {:.4} (temporal){}",
        fleet.across_pair_cov(),
        fleet.mean_within_pair_cov,
        if fleet.is_degraded() { "  [DEGRADED]" } else { "" }
    );
    Ok(())
}

/// Crash-safe fleet: every settled shard is journaled, `--resume` picks
/// an interrupted campaign back up, and supervision budgets bound the
/// work. The deterministic report goes to **stdout**; everything that
/// may differ between an interrupted run and its resumption (worker
/// count, progress, resume accounting) goes to stderr, so
/// `verify.sh` can diff resumed against uninterrupted output
/// byte-for-byte.
#[allow(clippy::too_many_arguments)]
fn cmd_fleet_journaled(
    flags: &BTreeMap<String, String>,
    cloud: clouds::CloudProfile,
    pattern: netsim::TrafficPattern,
    h: f64,
    n_pairs: usize,
    seed: u64,
    jobs: usize,
    jpath: &str,
) -> Result<(), String> {
    let resume = flags.contains_key("resume");
    let verify = get_u64(flags, "verify-resume", 2)? as usize;
    let kill_after = get_u64(flags, "kill-after", 0)?;
    // Group commit: one durable journal write per k settled shards.
    // Contents are unchanged; a crash loses at most the open group.
    let group = get_u64(flags, "checkpoint-every", 1)?.max(1) as usize;
    let spec = measure::FleetSpec {
        profile: cloud,
        pattern,
        duration_s: hours(h),
        n_pairs,
        seed,
        supervise: measure::SupervisePolicy {
            max_shard_attempts: get_u64(flags, "max-attempts", 3)? as u32,
            retry_budget: get_u64(flags, "retry-budget", 8)? as u32,
            shard_step_budget: get_u64(flags, "step-budget", 0)?,
        },
    };
    eprintln!(
        "fleet[journaled]: journal {jpath}, resume={resume}, verify-resume={verify}, \
         {jobs} worker{}",
        if jobs == 1 { "" } else { "s" }
    );
    let out = measure::run_fleet_journaled_grouped(
        &spec,
        std::path::Path::new(jpath),
        resume,
        verify,
        jobs,
        group,
        |n| {
            eprintln!("  journaled {n}/{n_pairs} shards");
            if kill_after > 0 && n >= kill_after {
                // Crash-testing hook: die as abruptly as a SIGKILL
                // would — no unwinding, no flushing, mid-campaign.
                eprintln!("  --kill-after {kill_after}: aborting now");
                std::process::abort();
            }
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "resume: resumed={} skipped={} verified={} computed={} truncated={}B",
        out.resume.resumed,
        out.resume.skipped,
        out.resume.verified,
        out.resume.computed,
        out.resume.truncated_bytes
    );

    // Everything below is a pure function of (spec, journal contents)
    // and must be byte-identical across interruption and worker count.
    println!(
        "fleet campaign: {n_pairs} pairs of {} {} / {} for {h} h (seed {seed}, config {:#018x})",
        spec.profile.provider.name(),
        spec.profile.instance_type,
        spec.pattern.label(),
        out.config_fingerprint
    );
    let fleet = &out.fleet;
    for (i, p) in fleet.pairs.iter().enumerate() {
        println!(
            "  pair {i:>2}: mean {:>6.2} Gbps  CoV {:>6.3}  coverage {:>5.1}%",
            p.mean_bandwidth_bps() / 1e9,
            p.summary.cov,
            p.coverage() * 100.0
        );
    }
    for f in &fleet.failed_pairs {
        println!("  pair {:>2}: died at {:.0} s (partial data: {})", f.pair, f.death_s, f.partial_data);
    }
    for p in &fleet.panicked {
        println!("  pair {:>2}: worker task panicked (contained): {}", p.task, p.payload);
    }
    for shard in &out.supervision.budget_denied {
        println!("  pair {shard:>2}: denied by step budget (no attempt ran)");
    }
    println!(
        "across-pair CoV {:.4} (spatial), mean within-pair CoV {:.4} (temporal){}",
        fleet.across_pair_cov(),
        fleet.mean_within_pair_cov,
        if fleet.is_degraded() { "  [DEGRADED]" } else { "" }
    );
    if !fleet.pairs.is_empty() {
        let means: Vec<f64> = fleet.pairs.iter().map(|p| p.mean_bandwidth_bps()).collect();
        let (obs, exp) = fleet.pairs.iter().fold((0usize, 0usize), |(o, e), p| {
            (o + p.gap_summary.observed_n, e + p.gap_summary.expected_n)
        });
        let coverage = if exp == 0 { 1.0 } else { obs as f64 / exp as f64 };
        let report = MeasurementReport::new("pair mean bandwidth [bps]", &means)
            .with_coverage(coverage.min(1.0))
            .with_exhaustion(ExhaustionNote {
                retries_used: out.supervision.retries_used,
                retry_budget: out.supervision.retry_budget,
                retry_exhausted: out.supervision.retry_exhausted,
                budget_denied_shards: out.supervision.budget_denied.len(),
            });
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_run(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let job = workload_by_name(flags.get("workload").ok_or("--workload required")?)?;
    let reps = get_u64(flags, "reps", 10)? as usize;
    let nodes = get_u64(flags, "nodes", 12)? as usize;
    let seed = get_u64(flags, "seed", 1)?;
    // A/B escape hatch: pick the fabric's stepping engine explicitly.
    // All three paths are bit-identical; output must not change.
    // `--reference-fabric` is kept as a shorthand for
    // `--fabric-path reference`.
    let path = if flags.contains_key("reference-fabric") {
        netsim::StepPath::Reference
    } else {
        match flags.get("fabric-path") {
            Some(name) => fabric_path_by_name(name)?,
            None => netsim::StepPath::Event,
        }
    };
    // A flat topology is byte-identical to passing no `--topology` at
    // all (the flat-equivalence contract, DESIGN.md §12); verify.sh
    // diffs the two invocations, so flat must not mark the header.
    let placement_seed = get_u64(flags, "placement-seed", seed)?;
    let topology = match flags.get("topology") {
        Some(name) => Some(topology_by_name(name, nodes)?),
        None => None,
    };
    println!(
        "running {} x{reps} on {nodes}x {} {} (fresh VMs per run){}{}",
        job.name,
        cloud.provider.name(),
        cloud.instance_type,
        match path {
            netsim::StepPath::Event => "",
            netsim::StepPath::Fast => " [fast fabric path]",
            netsim::StepPath::Reference => " [reference fabric path]",
        },
        match &topology {
            Some(t) if !t.is_flat() => format!(" [topology {}]", t.name()),
            _ => String::new(),
        }
    );
    let fleet = measure::run_placement_fleet(
        &cloud,
        &job,
        nodes,
        16,
        reps,
        seed,
        topology.as_ref(),
        placement_seed,
        path,
    )
    .map_err(|e| e.to_string())?;
    let report = MeasurementReport::new(&format!("{} runtime [s]", job.name), &fleet.durations_s)
        .with_fabric_perf(fleet.fabric_perf);
    print!("{}", report.render());
    Ok(())
}

fn cmd_plan(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let cloud = cloud_by_name(flags.get("cloud").ok_or("--cloud required")?)?;
    let job = workload_by_name(flags.get("workload").ok_or("--workload required")?)?;
    let pilot = get_u64(flags, "pilot", 20)? as usize;
    let target = get_f64(flags, "target", 0.05)?;
    let seed = get_u64(flags, "seed", 1)?;
    println!(
        "pilot: {} x{pilot} on {} {}",
        job.name,
        cloud.provider.name(),
        cloud.instance_type
    );
    let samples: Vec<f64> = (0..pilot)
        .map(|rep| {
            let s = netsim::rng::derive_seed(seed, rep as u64);
            let mut cluster = bigdata::Cluster::from_profile(&cloud, 12, 16, s);
            bigdata::run_job(&mut cluster, &job, s).duration_s
        })
        .collect();
    let rec = recommend_repetitions(&samples, 0.5, 0.95, target);
    println!(
        "pilot median {:.1} s; CI error {}",
        vstats::median(&samples),
        rec.pilot_error
            .map(|e| format!("{:.1}%", e * 100.0))
            .unwrap_or_else(|| "n/a".into())
    );
    match rec.recommended {
        Some(n) => println!(
            "-> run at least {n} repetitions for a ±{:.0}% median CI (hard floor {})",
            target * 100.0,
            rec.minimum_for_ci
        ),
        None => println!("-> pilot too small; gather more than {} runs", rec.minimum_for_ci),
    }
    Ok(())
}

/// `cloud-repro detlint [--root DIR] [--json] [--no-cache]` — run the
/// determinism & hermeticity linter (token, dataflow, and call-graph
/// rules) over the workspace. Uses the incremental facts cache at
/// `<root>/target/detlint-cache` unless `--no-cache`. Returns
/// `Ok(true)` when the gate is clean (no deny-tier findings).
fn cmd_detlint(flags: &BTreeMap<String, String>) -> Result<bool, String> {
    let root = std::path::Path::new(flags.get("root").map(|s| s.as_str()).unwrap_or("."));
    let findings = if flags.contains_key("no-cache") {
        detlint::lint_workspace(root).map_err(|e| e.to_string())?
    } else {
        let cache_dir = root.join("target").join("detlint-cache");
        detlint::lint_workspace_cached(root, &cache_dir)
            .map_err(|e| e.to_string())?
            .findings
    };
    if flags.contains_key("json") {
        print!("{}", detlint::render_json_lines(&findings));
    } else {
        print!("{}", detlint::render_human(&findings));
    }
    Ok(detlint::tally(&findings).deny == 0)
}

fn cmd_survey() {
    let res = survey::run_survey(&survey::generate());
    println!(
        "survey: {} articles -> {} keyword matches -> {} cloud papers ({} citations)",
        res.total, res.keyword_filtered, res.cloud_selected, res.citations
    );
    println!(
        "reporting: avg/median {:.1}%, variability {:.1}%, poorly specified {:.1}%",
        res.fig1a.pct_avg_or_median, res.fig1a.pct_variability, res.fig1a.pct_poorly_specified
    );
    print!("repetitions histogram:");
    for (r, c) in &res.fig1b {
        print!(" {r}x{c}");
    }
    println!();
    println!(
        "kappa: avg/median {:.2}, variability {:.2}, poor-spec {:.2}",
        res.kappa_avg_median, res.kappa_variability, res.kappa_poor_spec
    );
}

fn usage() {
    println!("cloud-repro — NSDI'20 cloud-variability reproduction toolkit");
    println!();
    println!("subcommands:");
    println!("  list                               clouds, workloads, patterns");
    println!("  campaign --cloud C [--pattern P] [--hours H] [--seed S]");
    println!("        [--tenants N]   streaming campaign: N seed-derived tenant pairs folded");
    println!("        into O(1) sketch state; report bytes invariant to workers and engine;");
    println!("        [--faults] reference faults; [--topology T] [--hosts N]");
    println!("        [--placement-seed S] per-tenant path ceilings; [--self-check] cross-");
    println!("        check sketch vs exact quantiles; [--journal PATH] [--resume]");
    println!("        [--checkpoint-every K] crash-safe checkpoints every K tenants;");
    println!("        [--kill-after-tenants N] crash-test hook");
    println!("  fleet --cloud C [--pairs N] [--pattern P] [--hours H] [--seed S]");
    println!("        [--journal PATH] [--resume] [--verify-resume N]   crash-safe campaign:");
    println!("        journal every settled shard, resume after a crash, re-verify N");
    println!("        journaled shards bit-for-bit; [--max-attempts N] [--retry-budget N]");
    println!("        [--step-budget STEPS] bound repairs; [--kill-after N] crash-test hook;");
    println!("        [--checkpoint-every K] group-commit one journal write per K shards");
    println!("  probe --cloud C [--probes N] [--max-seconds T]");
    println!("  fingerprint --cloud C [--bucket]");
    println!("  run --cloud C --workload W [--reps N] [--nodes N] [--fabric-path event|fast|reference]");
    println!("      [--topology T] [--placement-seed S]   place nodes on a datacenter");
    println!("      topology with ECMP spreading; re-placed per repetition");
    println!("  plan --cloud C --workload W [--pilot N] [--target FRAC]");
    println!("  survey");
    println!("  detlint [--root DIR] [--json] [--no-cache]  lint against the determinism contract");
    println!();
    println!("global flags:");
    println!("  --jobs N    parallel workers (default: REPRO_JOBS env, then all");
    println!("              cores); results are bit-identical at any worker count");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match get_jobs(&flags) {
        Ok(jobs) => exec::set_global_jobs(jobs),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let result = match cmd.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "campaign" => cmd_campaign(&flags),
        "fleet" => cmd_fleet(&flags),
        "probe" => cmd_probe(&flags),
        "fingerprint" => cmd_fingerprint(&flags),
        "run" => cmd_run(&flags),
        "plan" => cmd_plan(&flags),
        "survey" => {
            cmd_survey();
            Ok(())
        }
        // detlint has its own exit-code contract (1 = deny findings,
        // 2 = I/O error) and must not print usage on a red gate.
        "detlint" => {
            return match cmd_detlint(&flags) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::from(1),
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            };
        }
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
