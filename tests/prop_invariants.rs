//! Property-based tests over the core invariants, spanning crates.

use cloud_repro::prelude::*;
use netsim::fabric::{Fabric, FlowSpec};
use netsim::shaper::{Shaper, StaticShaper, TokenBucket};
use proplite::prelude::*;

prop_cases! {
    #![config(Config::with_cases(64))]

    /// A token bucket never grants more than demand, never more than
    /// the peak rate allows, and its budget stays within [0, capacity]
    /// under arbitrary demand schedules.
    #[test]
    fn token_bucket_invariants(
        budget_gbit in 0.0f64..6000.0,
        demands in vec_of(0.0f64..20e9, 1..200),
        dt in 0.01f64..2.0,
    ) {
        let mut tb = TokenBucket::sigma_rho(budget_gbit * 1e9, 1e9, 10e9);
        let mut t = 0.0;
        for d in demands {
            let demand_bits = d * dt;
            let granted = tb.transmit(t, dt, demand_bits);
            prop_assert!(granted <= demand_bits + 1e-6);
            prop_assert!(granted <= 10e9 * dt + 1e-6);
            prop_assert!(tb.budget_bits() >= 0.0);
            prop_assert!(tb.budget_bits() <= tb.capacity_bits() + 1e-6);
            t += dt;
        }
    }

    /// Fabric conservation: flows complete having moved exactly their
    /// requested bits, and node egress accounting matches.
    #[test]
    fn fabric_conserves_bits(
        n_nodes in 2usize..6,
        flows in vec_of((0usize..6, 0usize..6, 1e9f64..50e9), 1..12),
    ) {
        let mut fabric = Fabric::new();
        for _ in 0..n_nodes {
            fabric.add_node(StaticShaper::new(10e9), 10e9);
        }
        let mut expected_tx = vec![0.0f64; n_nodes];
        let mut started = 0;
        for (src, dst, bits) in flows {
            let (src, dst) = (src % n_nodes, dst % n_nodes);
            if src == dst {
                continue;
            }
            fabric.start_flow(FlowSpec::new(src, dst, bits));
            expected_tx[src] += bits;
            started += 1;
        }
        if started == 0 {
            return Ok(());
        }
        let mut guard = 0;
        while fabric.active_flows() > 0 && guard < 500_000 {
            fabric.step(0.5);
            guard += 1;
        }
        prop_assert_eq!(fabric.active_flows(), 0, "flows stuck");
        for v in 0..n_nodes {
            prop_assert!(
                (fabric.node_total_tx_bits(v) - expected_tx[v]).abs() < 1.0,
                "node {} sent {} expected {}",
                v,
                fabric.node_total_tx_bits(v),
                expected_tx[v]
            );
        }
    }

    /// Quantile CIs bracket their estimate, widen with confidence, and
    /// contain the sample median for any input data.
    #[test]
    fn quantile_ci_brackets(
        mut xs in vec_of(-1e6f64..1e6, 10..200),
    ) {
        let med = vstats::median(&xs);
        if let Some(ci) = vstats::quantile_ci(&xs, 0.5, 0.95) {
            prop_assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
            prop_assert!(ci.contains(med));
            if let Some(ci99) = vstats::quantile_ci(&xs, 0.5, 0.99) {
                prop_assert!(ci99.width() >= ci.width() - 1e-9);
            }
        }
        // Quantile function is monotone in p.
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = vstats::describe::quantile_sorted(&xs, i as f64 / 10.0);
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    /// The engine conserves shuffle volume: per-job node_tx sums to the
    /// job's total shuffle bits, regardless of budget or skew.
    #[test]
    fn engine_conserves_shuffle_bits(
        budget in 5.0f64..5000.0,
        skew in 0.0f64..1.0,
        shuffle_gbit in 1.0f64..300.0,
        seed in 0u64..1000,
    ) {
        let mut cluster = bigdata::Cluster::ec2_emulated(4, 4, budget);
        let job = bigdata::JobSpec::new(
            "prop",
            vec![bigdata::StageSpec::new("s", 16, 2.0, shuffle_gbit * 1e9)],
        ).with_skew(skew);
        let r = bigdata::run_job(&mut cluster, &job, seed);
        let total: f64 = r.node_tx_bits.iter().sum();
        prop_assert!(
            (total - shuffle_gbit * 1e9).abs() / (shuffle_gbit * 1e9) < 0.01,
            "moved {} of {}",
            total,
            shuffle_gbit * 1e9
        );
    }

    /// Campaign summaries are internally consistent for arbitrary
    /// (short) durations and seeds.
    #[test]
    fn campaign_summary_consistency(
        seed in 0u64..500,
        minutes in 10u64..40,
    ) {
        let profile = clouds::hpccloud::n_core(8);
        let res = measure::run_campaign(
            &profile,
            netsim::TrafficPattern::FullSpeed,
            minutes as f64 * 60.0,
            seed,
        ).unwrap();
        let s = &res.summary;
        prop_assert!(s.min <= s.box_summary.p1 + 1e-9);
        prop_assert!(s.box_summary.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(res.total_bits > 0.0);
        // Bandwidth bounded by the profile's capacity.
        prop_assert!(s.max <= 10.4e9 + 1.0);
    }

    /// Experiment schedules are permutations: every (treatment, rep)
    /// exactly once, for any configuration.
    #[test]
    fn schedule_is_permutation(
        treatments in 1usize..6,
        reps in 1usize..12,
        seed in 0u64..100,
        randomize in bools(),
    ) {
        let plan = measure::ExperimentPlan {
            repetitions: reps,
            randomize_order: randomize,
            rest_between_s: 1.0,
            confidence: 0.95,
        };
        let sched = plan.schedule(treatments, seed);
        prop_assert_eq!(sched.len(), treatments * reps);
        let mut seen = std::collections::HashSet::new();
        for r in &sched {
            prop_assert!(r.treatment < treatments && r.repetition < reps);
            prop_assert!(seen.insert((r.treatment, r.repetition)));
        }
    }
}
