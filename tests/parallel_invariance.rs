//! End-to-end parallelism invariance: the whole stack — fleet
//! campaigns with faults, pattern sweeps, bootstrap CIs — produces
//! byte-identical results at worker counts 1, 2, and 8.
//!
//! This is the cross-crate companion to the unit/property suites in
//! `crates/exec` (runtime invariants), `crates/measure` (fleet
//! assembly), and `crates/stats` (resample streams).

use cloud_repro::prelude::*;
use measure::{run_all_patterns_jobs, run_fleet_jobs, FleetResult};
use netsim::units::hours;
use netsim::TrafficPattern;
use vstats::{bootstrap_ci_jobs, block_bootstrap_ci_jobs, mean};

/// Serialize every result field down to f64 bit patterns.
fn fingerprint(fleet: &FleetResult) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(
        s,
        "{:x}|{:x}|{:x}|{}|{}",
        fleet.across_pairs.mean.to_bits(),
        fleet.across_pairs.cov.to_bits(),
        fleet.mean_within_pair_cov.to_bits(),
        fleet.failed_pairs.len(),
        fleet.panicked.len()
    );
    for p in &fleet.pairs {
        let _ = write!(s, "|{}:{:x}", p.trace.samples.len(), p.summary.mean.to_bits());
        for g in &p.gaps {
            let _ = write!(s, ";{:x}-{:x}-{}", g.start_s.to_bits(), g.end_s.to_bits(), g.cause.label());
        }
    }
    s
}

#[test]
fn faulty_fleet_is_worker_count_invariant_end_to_end() {
    let mut profile = clouds::hpccloud::n_core(8).with_reference_faults();
    profile.faults.pair_death_rate_per_hour = 0.1;
    let serial = run_fleet_jobs(&profile, TrafficPattern::FullSpeed, hours(6.0), 6, 42, 1)
        .expect("fleet survives");
    assert!(serial.is_degraded(), "reference faults over 6 h should cost something");
    for jobs in [2usize, 8] {
        let wide = run_fleet_jobs(&profile, TrafficPattern::FullSpeed, hours(6.0), 6, 42, jobs)
            .expect("fleet survives");
        assert_eq!(fingerprint(&wide), fingerprint(&serial), "jobs={jobs}");
    }
}

#[test]
fn pattern_sweep_is_worker_count_invariant() {
    let profile = clouds::gce::n_core(8);
    let serial = run_all_patterns_jobs(&profile, hours(3.0), 7, 1).expect("patterns run");
    for jobs in [2usize, 8] {
        let wide = run_all_patterns_jobs(&profile, hours(3.0), 7, jobs).expect("patterns run");
        for (a, b) in wide.iter().zip(serial.iter()) {
            assert_eq!(a.trace.samples, b.trace.samples, "jobs={jobs} pattern={}", a.pattern);
            assert_eq!(a.total_retransmissions, b.total_retransmissions);
        }
    }
}

#[test]
fn bootstrap_cis_are_worker_count_invariant() {
    // Feed the bootstrap real campaign output, not synthetic data.
    let profile = clouds::ec2::c5_xlarge();
    let res = measure::run_campaign(&profile, TrafficPattern::FullSpeed, hours(2.0), 3)
        .expect("campaign runs");
    let xs = res.trace.bandwidths();
    let iid1 = bootstrap_ci_jobs(&xs, mean, 1000, 0.95, 5, 1);
    let blk1 = block_bootstrap_ci_jobs(&xs, mean, 8, 1000, 0.95, 5, 1);
    for jobs in [2usize, 8] {
        let iid = bootstrap_ci_jobs(&xs, mean, 1000, 0.95, 5, jobs);
        let blk = block_bootstrap_ci_jobs(&xs, mean, 8, 1000, 0.95, 5, jobs);
        assert_eq!(iid.lower.to_bits(), iid1.lower.to_bits(), "jobs={jobs}");
        assert_eq!(iid.upper.to_bits(), iid1.upper.to_bits(), "jobs={jobs}");
        assert_eq!(blk.lower.to_bits(), blk1.lower.to_bits(), "jobs={jobs}");
        assert_eq!(blk.upper.to_bits(), blk1.upper.to_bits(), "jobs={jobs}");
    }
}

#[test]
fn exec_is_reachable_through_the_prelude() {
    // The CLI and examples resolve workers through the re-exported
    // crate; nothing should need a direct `exec` dependency.
    assert!(exec::current_jobs() >= 1);
    let doubled = exec::par_map(4, &[1u64, 2, 3], |&x| x * 2);
    assert_eq!(doubled, vec![2, 4, 6]);
}
