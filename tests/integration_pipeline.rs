//! Cross-crate integration: cloud profiles → measurement harness →
//! statistics → reporting, end to end.

use cloud_repro::prelude::*;
use netsim::units::{gbps, hours};
use netsim::TrafficPattern;

#[test]
fn campaign_to_report_pipeline() {
    // Measure a GCE pair for two hours under 10-30.
    let profile = clouds::gce::n_core(8);
    let campaign =
        measure::run_campaign(&profile, TrafficPattern::TEN_THIRTY, hours(2.0), 3).unwrap();
    assert!(campaign.exhibits_variability());

    // Feed the per-interval bandwidths through the reporting layer.
    let bw = campaign.trace.bandwidths();
    let report = MeasurementReport::new("gce-8core 10-30 bandwidth", &bw);
    assert!(report.median_ci.is_some());
    let ci = report.median_ci.unwrap();
    assert!(ci.lower > gbps(12.0) && ci.upper < gbps(16.0), "{ci:?}");
    // The rendered report mentions the treatment and the CI.
    let text = report.render();
    assert!(text.contains("gce-8core"));
    assert!(text.contains("median 95% CI"));
}

#[test]
fn three_clouds_three_mechanisms() {
    // One harness, three QoS mechanisms, three distinct behaviours.
    let d = hours(3.0);
    let ec2 =
        measure::run_campaign(&clouds::ec2::c5_xlarge(), TrafficPattern::FullSpeed, d, 5).unwrap();
    let gce =
        measure::run_campaign(&clouds::gce::n_core(8), TrafficPattern::FullSpeed, d, 5).unwrap();
    let hpc = measure::run_campaign(&clouds::hpccloud::n_core(8), TrafficPattern::FullSpeed, d, 5)
        .unwrap();

    // EC2: bimodal (10 Gbps then 1 Gbps) → enormous CoV.
    assert!(ec2.summary.cov > 0.5, "ec2 CoV {}", ec2.summary.cov);
    // GCE: stable high.
    assert!(gce.summary.cov < 0.05, "gce CoV {}", gce.summary.cov);
    assert!(gce.mean_bandwidth_bps() > gbps(14.5));
    // HPCCloud: moderate contention noise in between.
    assert!(hpc.summary.cov > 0.005 && hpc.summary.cov < 0.2);

    // Retransmission fingerprints differ by an order of magnitude.
    assert!(gce.total_retransmissions > 10 * (ec2.total_retransmissions + 1));
}

#[test]
fn survey_statistics_flow_through_vstats() {
    // The survey's Kappa values go through the vstats implementation.
    let corpus = survey::generate();
    let res = survey::run_survey(&corpus);
    assert!(res.kappa_avg_median > res.kappa_variability);
    // And CI machinery agrees with the survey's premise: 3 reps (the
    // modal literature choice) cannot carry a 95% CI.
    assert!(vstats::quantile_ci(&[1.0, 2.0, 3.0], 0.5, 0.95).is_none());
    assert_eq!(vstats::ci::min_samples_for_ci(0.5, 0.95), 6);
}

#[test]
fn fingerprint_roundtrip_across_crates() {
    let profile = clouds::ec2::c5_xlarge();
    let fp = measure::Fingerprint::capture(&profile, 9, true);
    // Bucket estimate matches the profile's nominal parameters.
    let b = fp.token_bucket.expect("ec2 has a bucket");
    let nominal = profile.nominal_time_to_empty_s().unwrap();
    assert!(
        (b.time_to_empty_s - nominal).abs() / nominal < 0.35,
        "probe {} vs nominal {}",
        b.time_to_empty_s,
        nominal
    );
    // A same-era recapture matches; the auditor accepts the design.
    let fp2 = measure::Fingerprint::capture(&profile, 9, true);
    assert!(fp2.matches(&fp, 0.05));
}

#[test]
fn ballani_emulation_reaches_application_level() {
    // Figure 3's pipeline: quantile distribution → shaper → cluster →
    // Spark job → runtime, for two very different clouds.
    use bigdata::Cluster;
    use netsim::shaper::Shaper;

    let mut runtimes = Vec::new();
    for label in ['C', 'G'] {
        let shapers: Vec<Box<dyn Shaper + Send>> = (0..8)
            .map(|n| {
                Box::new(clouds::ballani::shaper_for(label, 5.0, 100 + n)) as Box<dyn Shaper + Send>
            })
            .collect();
        let mut cluster = Cluster::from_shapers(shapers, gbps(1.0), 16);
        let job = bigdata::JobSpec::new(
            "probe",
            vec![bigdata::StageSpec::new("xfer", 128, 5.0, 64e9)],
        );
        runtimes.push(bigdata::run_job(&mut cluster, &job, 1).duration_s);
    }
    // Cloud C (median 830 Mb/s) beats cloud G (median 390 Mb/s).
    assert!(
        runtimes[0] < runtimes[1],
        "C {} vs G {}",
        runtimes[0],
        runtimes[1]
    );
}
