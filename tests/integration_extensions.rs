//! Cross-crate integration of the beyond-the-paper extensions: the
//! protocol runner over timeline-allocated VMs, rest planning feeding
//! the repetition driver, cross traffic destabilizing experiments, and
//! the congestion model agreeing with the fluid model's steady state.

use cloud_repro::prelude::*;
use bigdata::runner::{durations, run_repetitions, BudgetPolicy};
use bigdata::workloads::tpcds;
use bigdata::Cluster;
use netsim::congestion::{run_reno, RenoConfig};
use netsim::fabric::CrossTraffic;
use netsim::nic::{NicConfig, NicModel};
use netsim::units::{gbit, gbps};
use repro_core::{run_protocol, ProtocolConfig, ProtocolOutcome};

#[test]
fn timeline_fingerprint_protocol_chain() {
    // Allocate a fleet across the policy-change date; the protocol's
    // drift gate separates comparable from incomparable batches.
    let timeline = clouds::PolicyTimeline::c5_xlarge_2018_2019();
    let baseline = measure::Fingerprint::capture(&timeline.profile, 50, false);

    let mut aborted = 0;
    let mut proceeded = 0;
    for seed in 0..12u64 {
        let vm = timeline.allocate(clouds::timeline::AUG_2019 + 5, seed);
        let mut current = baseline.clone();
        current.base_bandwidth_gbps = vm.line_rate_bps / 1e9;
        let res = run_protocol(
            &ProtocolConfig {
                pilot_runs: 5,
                max_runs: 12,
                target_error: 0.10,
                seed,
                ..Default::default()
            },
            Some(&baseline),
            &current,
            |_r, s| 100.0 + (s % 7) as f64,
        );
        match res.outcome {
            ProtocolOutcome::EnvironmentDrift(_) => aborted += 1,
            _ => proceeded += 1,
        }
    }
    // Both populations exist post-change ("though not consistently").
    assert!(aborted >= 2, "aborted {aborted}");
    assert!(proceeded >= 2, "proceeded {proceeded}");
}

#[test]
fn rest_planner_restores_run_independence() {
    // Probe the bucket, plan a rest long enough to repay each run's
    // consumption, and verify the carry-over campaign stays stable.
    let profile = clouds::ec2::c5_xlarge();
    let est = measure::probe_token_bucket(&profile, 60, 2000.0).unwrap();
    let planner = measure::RestPlanner::from_probe(&est);

    let job = tpcds::query(65); // ~173 Gbit/node per run
    let per_node_bits = job.total_shuffle_bits() / 12.0;
    let rest = planner.rest_between_runs_s(per_node_bits, 45.0);
    assert!(rest > 60.0, "planned rest {rest}");

    let mut cluster = Cluster::ec2_emulated(12, 16, 600.0);
    let with_rest = durations(&run_repetitions(
        &mut cluster,
        &job,
        6,
        BudgetPolicy::CarryOver { rest_s: rest },
        1,
    ));
    let spread = with_rest.iter().cloned().fold(0.0f64, f64::max)
        / with_rest.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.25, "rested runs {with_rest:?}");

    // The same campaign with token rests skipped drifts badly.
    let mut cluster = Cluster::ec2_emulated(12, 16, 600.0);
    let no_rest = durations(&run_repetitions(
        &mut cluster,
        &job,
        6,
        BudgetPolicy::CarryOver { rest_s: 5.0 },
        1,
    ));
    assert!(
        no_rest.last().unwrap() > &(1.3 * no_rest[0]),
        "unrested runs {no_rest:?}"
    );
}

#[test]
fn cross_traffic_widens_experiment_cis() {
    let job = tpcds::query(65);
    let run_with = |noise: bool, rep: u64| {
        let mut c = Cluster::ec2_emulated(6, 8, 5000.0);
        if noise {
            c = c.with_cross_traffic(CrossTraffic::new(1.0, 10e9, gbps(5.0), 40 + rep));
        }
        bigdata::run_job(&mut c, &job, rep).duration_s
    };
    let quiet: Vec<f64> = (0..10).map(|r| run_with(false, r)).collect();
    let noisy: Vec<f64> = (0..10).map(|r| run_with(true, r)).collect();
    let q = MeasurementReport::new("quiet", &quiet);
    let n = MeasurementReport::new("noisy", &noisy);
    assert!(n.summary.cov > q.summary.cov, "noise must add variance");
    assert!(n.summary.mean > q.summary.mean, "noise must slow runs");
    // And the effect is a real distribution shift, not a fluke.
    let d = vstats::effect::cliffs_delta(&noisy, &quiet);
    assert!(d > 0.5, "cliffs delta {d}");
}

#[test]
fn congestion_model_agrees_with_fluid_steady_state() {
    // Same bucket, two models: long-run goodput within 25%.
    let fluid = {
        let mut tb = netsim::shaper::TokenBucket::sigma_rho(gbit(100.0), gbps(1.0), gbps(10.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 1);
        let cfg = netsim::tcp::StreamConfig::new(300.0, netsim::TrafficPattern::FullSpeed);
        let res = netsim::tcp::StreamSim::run(&mut tb, &mut nic, &cfg);
        res.bandwidth.total_bits() / 300.0
    };
    let reno = {
        let mut tb = netsim::shaper::TokenBucket::sigma_rho(gbit(100.0), gbps(1.0), gbps(10.0));
        let mut nic = NicModel::new(NicConfig::ec2_ena(gbps(10.0)), 1);
        let res = run_reno(&mut tb, &mut nic, &RenoConfig::default(), 300.0);
        res.mean_goodput_bps()
    };
    let ratio = reno / fluid;
    assert!(ratio > 0.7 && ratio < 1.3, "reno {reno} fluid {fluid}");
}

#[test]
fn oversubscribed_core_slows_all_to_all_shuffles() {
    let job = tpcds::query(65);
    let mut free = Cluster::ec2_emulated(6, 8, 5000.0);
    let fast = bigdata::run_job(&mut free, &job, 2).duration_s;
    let mut tight = Cluster::ec2_emulated(6, 8, 5000.0);
    // 2:1 oversubscription of the 6×10 Gbps access layer.
    tight.fabric_mut().set_core_capacity(gbps(30.0));
    let slow = bigdata::run_job(&mut tight, &job, 2).duration_s;
    assert!(slow > 1.05 * fast, "fast {fast} slow {slow}");
}
