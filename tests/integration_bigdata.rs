//! Cross-crate integration: the big-data engine on top of shaped
//! fabrics — budget coupling, stragglers, and repetition policies.

use cloud_repro::prelude::*;
use bigdata::engine::{run_job_traced, EngineConfig};
use bigdata::runner::{durations, run_repetitions, BudgetPolicy};
use bigdata::straggler::detect_stragglers;
use bigdata::workloads::{hibench, tpcds};
use bigdata::Cluster;
use netsim::units::gbps;

#[test]
fn budget_monotonicity_for_network_heavy_workloads() {
    let job = tpcds::query(65);
    let mut means = Vec::new();
    for budget in [5000.0, 100.0, 10.0] {
        let mut cluster = Cluster::ec2_emulated(12, 16, budget);
        let runs = run_repetitions(&mut cluster, &job, 3, BudgetPolicy::PresetGbit(budget), 1);
        let d = durations(&runs);
        means.push(d.iter().sum::<f64>() / d.len() as f64);
    }
    assert!(means[0] < means[1] && means[1] < means[2], "{means:?}");
    // Slowdown magnitude in the Figure 17 range for q65.
    assert!(means[2] / means[0] > 1.6 && means[2] / means[0] < 5.0);
}

#[test]
fn carry_over_breaks_independence_fresh_vms_restore_it() {
    let job = tpcds::query(65);
    // Carry-over: back-to-back runs on one cluster deplete the budget.
    let mut cluster = Cluster::ec2_emulated(12, 16, 600.0);
    let carry = durations(&run_repetitions(
        &mut cluster,
        &job,
        8,
        BudgetPolicy::CarryOver { rest_s: 5.0 },
        2,
    ));
    assert!(
        carry.last().unwrap() > &(1.3 * carry[0]),
        "expected drift: {carry:?}"
    );
    // Fresh VMs: no drift.
    let mut cluster = Cluster::ec2_emulated(12, 16, 600.0);
    let fresh = durations(&run_repetitions(
        &mut cluster,
        &job,
        8,
        BudgetPolicy::FreshVms,
        2,
    ));
    let spread = fresh.iter().cloned().fold(0.0f64, f64::max)
        / fresh.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.2, "fresh runs should be stable: {fresh:?}");
}

#[test]
fn drift_is_caught_by_the_assumption_battery() {
    // The F5.4 story end to end: a drifting (carry-over) measurement
    // sequence fails the iid battery; a fresh-VM sequence passes.
    let job = tpcds::query(65).scaled(1.0, 1.2);
    let mut cluster = Cluster::ec2_emulated(12, 16, 2000.0);
    let carry = durations(&run_repetitions(
        &mut cluster,
        &job,
        24,
        BudgetPolicy::CarryOver { rest_s: 5.0 },
        3,
    ));
    let report = MeasurementReport::new("carry-over q65", &carry);
    assert!(
        !report.assumptions.unwrap().iid_assumptions_hold(),
        "drift undetected: {carry:?}"
    );
}

#[test]
fn skewed_sequences_build_stragglers() {
    let cfg = EngineConfig {
        compute_jitter_sigma: 0.05,
        ..Default::default()
    };
    let mut cluster = Cluster::ec2_emulated(6, 8, 400.0);
    let job = tpcds::query(55).scaled(0.5, 0.5).with_skew(0.8).with_hot_node(2);
    let mut merged: Vec<bigdata::NodeTrace> = (0..6)
        .map(|node| bigdata::NodeTrace {
            node,
            samples: Vec::new(),
        })
        .collect();
    for pass in 0..6 {
        let (_r, traces) = run_job_traced(&mut cluster, &job, pass, &cfg);
        for tr in traces {
            merged[tr.node].samples.extend(tr.samples);
        }
    }
    let report = detect_stragglers(&merged, gbps(2.0));
    assert_eq!(report.stragglers, vec![2], "{:?}", report.throttled_fraction);
}

#[test]
fn hibench_network_ordering_survives_execution() {
    // The profile-level intensity ordering shows up in measured
    // budget sensitivity.
    let sensitivity = |job: &bigdata::JobSpec| {
        let mut fast = Cluster::ec2_emulated(12, 16, 5000.0);
        let f = bigdata::run_job(&mut fast, job, 7).duration_s;
        let mut slow = Cluster::ec2_emulated(12, 16, 10.0);
        let s = bigdata::run_job(&mut slow, job, 7).duration_s;
        s / f
    };
    let ts = sensitivity(&hibench::terasort());
    let km = sensitivity(&hibench::kmeans());
    assert!(ts > 1.2, "terasort sensitivity {ts}");
    assert!(km < 1.1, "kmeans sensitivity {km}");
}

#[test]
fn gce_and_hpccloud_clusters_run_jobs_too() {
    for profile in [clouds::gce::n_core(8), clouds::hpccloud::n_core(8)] {
        let mut cluster = Cluster::from_profile(&profile, 8, 8, 11);
        let job = tpcds::query(3);
        let r = bigdata::run_job(&mut cluster, &job, 11);
        assert!(r.duration_s > 10.0 && r.duration_s < 300.0, "{}", r.duration_s);
        assert!(r.node_tx_bits.iter().sum::<f64>() > 0.0);
    }
}
